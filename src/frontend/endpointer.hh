/**
 * @file
 * Endpointing for always-on audio: turn one endless microphone
 * stream into discrete utterance segments, plus the optional
 * wake-word gate in front of it and the synthetic labeled corpus the
 * endpointing suite and bench score against.
 *
 * Pipeline position (see docs/ARCHITECTURE.md "Always-on pipeline"):
 *
 *   raw audio ──► WakeWordGate (optional) ──► Endpointer ──► segments
 *
 * The Endpointer assembles fixed 10 ms frames from arbitrarily sized
 * pushes, classifies each through a vad::Detector, and runs an
 * onset/hangover state machine:
 *
 *   Idle ──(onsetFrames consecutive speech)──► InSpeech
 *   InSpeech ──(hangoverFrames consecutive silence, or
 *               maxSegmentFrames elapsed)──► Idle
 *
 * Output is an ordered event queue -- SegmentStart, per-frame Audio,
 * SegmentEnd -- so callers in any driving style (a blocking worker
 * loop, the batch coordinator's tick stages, a test harness) drain
 * at their own pace.  The Audio events of one segment concatenate to
 * *exactly* the samples in [startSample, endSample) of the input
 * stream: a segment includes prerollFrames of audio before the
 * detected onset (so plosive onsets are not clipped) and the
 * trailing-silence hangover (so the decoder sees the same tail a
 * manually segmented decode would).  That sample-exactness is what
 * the engine's auto-endpoint bit-identity contract rests on.
 *
 * Determinism contract: events are a pure function of the pushed
 * sample stream -- chunk boundaries, wall-clock and thread schedule
 * cannot move a segment boundary by even one sample.  The corpus
 * suite asserts this by re-running every utterance at pathological
 * chunk sizes.
 */

#ifndef ASR_FRONTEND_ENDPOINTER_HH
#define ASR_FRONTEND_ENDPOINTER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "frontend/audio.hh"
#include "frontend/mfcc.hh"
#include "frontend/vad.hh"

namespace asr::frontend {

/** Endpointer knobs (frame-rate quantities are 10 ms frames). */
struct EndpointerConfig
{
    /** vad::Detector registry name classifying the frames. */
    std::string detector = "energy";

    /** Detector knobs. */
    vad::VadConfig vad;

    std::uint32_t sampleRate = 16000;

    /** Consecutive speech frames that open a segment. */
    unsigned onsetFrames = 2;

    /**
     * Consecutive non-speech frames that close a segment (the
     * trailing-silence endpoint).  The vad hangover is upstream of
     * this count, so the total closing delay is
     * vad.hangoverFrames + hangoverFrames.
     */
    unsigned hangoverFrames = 30;

    /** Audio retained before the detected onset (catches the low-
     *  energy first phones the onset debounce skipped). */
    unsigned prerollFrames = 4;

    /** Force-close a segment after this many frames (0 = never);
     *  the paper's always-listening workload cannot let one noisy
     *  segment grow without bound. */
    unsigned maxSegmentFrames = 0;

    /** Samples per 10 ms frame. */
    std::size_t
    frameSamples() const
    {
        return std::size_t(sampleRate / 100);
    }
};

/** One segmentation event (see the ordering contract above). */
struct EndpointEvent
{
    enum class Kind
    {
        SegmentStart,  //!< startSample set
        Audio,         //!< audio + firstSample set
        SegmentEnd,    //!< startSample + endSample set
    };

    Kind kind = Kind::Audio;
    std::uint64_t startSample = 0;  //!< segment start (Start / End)
    std::uint64_t endSample = 0;    //!< segment end, exclusive (End)
    std::uint64_t firstSample = 0;  //!< absolute index of audio[0]
    std::vector<float> audio;       //!< Kind::Audio payload
};

/** Segments a continuous sample stream (see file comment). */
class Endpointer
{
  public:
    explicit Endpointer(const EndpointerConfig &cfg);
    ~Endpointer();

    /** Feed the next chunk (any size); may append events. */
    void push(std::span<const float> samples);

    /**
     * End of input: close an open segment at the last completed
     * frame.  A trailing partial frame (< frameSamples) is dropped,
     * never classified.  push() after flush() is invalid.
     */
    void flush();

    /** @return true when at least one event is queued. */
    bool eventReady() const { return !events.empty(); }

    /** Pop the next event in order (eventReady() required). */
    EndpointEvent pop();

    /** @return true while inside a speech segment. */
    bool inSpeech() const { return speaking; }

    std::uint64_t samplesPushed() const { return pushed; }

    /** Segments closed so far (SegmentEnd events emitted). */
    std::uint64_t segmentsClosed() const { return closedSegments; }

    const EndpointerConfig &config() const { return cfg; }

  private:
    void classifyFrame(std::span<const float> frame);
    void openSegment();
    void closeSegment(std::uint64_t end_frame);

    EndpointerConfig cfg;
    std::unique_ptr<vad::Detector> detector;
    std::deque<EndpointEvent> events;

    /** Partial-frame assembly buffer (< frameSamples samples). */
    std::vector<float> frameBuf;
    /** Preroll ring: the last prerollFrames classified-silent
     *  frames, oldest first. */
    std::deque<std::vector<float>> preroll;

    std::uint64_t pushed = 0;
    std::uint64_t framesSeen = 0;   //!< completed frames classified
    std::uint64_t closedSegments = 0;
    std::uint64_t segStartSample = 0;
    std::uint64_t segFrames = 0;    //!< frames forwarded this segment
    unsigned onsetRun = 0;
    unsigned silenceRun = 0;
    bool speaking = false;
    bool flushed = false;
};

/**
 * Keyword-spotting gate: template match over MFCC frames.
 *
 * Built from one recording of the wake phrase; incoming audio is
 * MFCC-analyzed with the same front-end and the last template-length
 * frames are compared against the template by mean per-frame cosine
 * similarity of the cepstra (c0, raw energy, excluded -- the match
 * must not depend on how loudly the phrase is spoken).  Once the
 * score clears the threshold the gate opens and stays open until
 * rearm().
 *
 * Holds a reference to the (immutable, shareable) Mfcc; each stream
 * owns its own gate.
 */
class WakeWordGate
{
  public:
    /**
     * @param mfcc          front-end (must outlive the gate)
     * @param template_audio the wake phrase at mfcc's sample rate
     * @param threshold     mean-cosine score in (0, 1] that opens
     */
    WakeWordGate(const Mfcc &mfcc,
                 std::span<const float> template_audio,
                 float threshold = 0.7f);

    /**
     * Feed the next chunk.  While closed, samples are consumed for
     * detection only.
     * @return the index into @p samples from which audio is live
     *         (samples.size() while still closed; 0 once open) --
     *         the wake phrase itself is never forwarded downstream
     */
    std::size_t push(std::span<const float> samples);

    bool isOpen() const { return open_; }

    /** Close again and restart detection (template kept). */
    void rearm();

    /** Best match score seen since construction/rearm. */
    float bestScore() const { return best; }

    /** Template length in frames (exposed for tests). */
    std::size_t templateFrames() const { return tmpl.size(); }

  private:
    float matchScore() const;

    const Mfcc &mfcc;
    float threshold;
    FeatureMatrix tmpl;            //!< wake-phrase MFCC frames
    StreamingMfcc stream;          //!< analysis of the live audio
    std::deque<std::vector<float>> window;  //!< last tmpl.size() frames
    bool open_ = false;
    float best = -1.0f;
};

// ---------------------------------------------------------------------------
// Synthetic labeled endpointing corpus (no binary assets: everything
// is generated from a seed, the same philosophy as audio.hh).
// ---------------------------------------------------------------------------

/** Shape of one generated always-on recording. */
struct EndpointCorpusConfig
{
    std::uint64_t seed = 1;
    std::uint32_t sampleRate = 16000;
    std::uint32_t numPhonemes = 12;  //!< synthesizer inventory
    unsigned numSegments = 3;        //!< speech bursts per recording
    unsigned minSpeechFrames = 30;   //!< burst length range (frames)
    unsigned maxSpeechFrames = 80;
    unsigned minGapFrames = 70;      //!< inter-burst silence range;
    unsigned maxGapFrames = 140;     //!<   keep > closing delay
    unsigned leadInFrames = 60;      //!< silence before the first burst
    double snrDb = 20.0;             //!< speech RMS over noise RMS
};

/** Ground-truth span of one speech burst, in samples. */
struct LabeledSegment
{
    std::uint64_t startSample = 0;
    std::uint64_t endSample = 0;  //!< exclusive
};

/** One generated recording with its ground-truth segmentation. */
struct EndpointCorpusUtterance
{
    AudioSignal audio;
    std::vector<LabeledSegment> segments;
};

/**
 * Generate one always-on recording: speech-shaped formant bursts
 * (frontend::Synthesizer) separated by silence, with white noise
 * mixed over the whole signal at @p cfg.snrDb relative to the speech
 * RMS.  Deterministic in cfg.seed.
 */
EndpointCorpusUtterance
generateEndpointCorpus(const EndpointCorpusConfig &cfg);

/** Segmentation quality of one recording against its labels. */
struct SegmentationScore
{
    std::size_t truthSegments = 0;
    std::size_t detectedSegments = 0;
    std::size_t missed = 0;         //!< truth with no overlapping detection
    std::size_t falseTriggers = 0;  //!< detections overlapping no truth
    double meanStartErrMs = 0.0;    //!< |detected - truth| over matches
    double meanEndErrMs = 0.0;
};

/**
 * Score @p detected against @p truth: a truth segment is missed when
 * no detection overlaps it; a detection is a false trigger when it
 * overlaps no truth segment.  Boundary errors average over matched
 * (truth, first-overlapping-detection) pairs.
 */
SegmentationScore
scoreSegmentation(const std::vector<LabeledSegment> &truth,
                  const std::vector<LabeledSegment> &detected,
                  std::uint32_t sample_rate);

/**
 * Run @p ep over @p audio in @p chunk-sized pushes, flush, and
 * return the detected segment spans (events are drained; Audio
 * payloads discarded).  The standalone driver the corpus suite and
 * bench share.
 */
std::vector<LabeledSegment>
detectSegments(Endpointer &ep, const AudioSignal &audio,
               std::size_t chunk = 160);

} // namespace asr::frontend

#endif // ASR_FRONTEND_ENDPOINTER_HH
