#include "frontend/audio.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace asr::frontend {

Synthesizer::Synthesizer(std::uint32_t num_phonemes,
                         std::uint32_t sample_rate, std::uint64_t seed)
    : rate(sample_rate), noiseSeed(seed ^ 0xa5a5a5a5ull)
{
    ASR_ASSERT(num_phonemes >= 1, "need at least one phoneme");
    Rng rng(seed);
    voices.resize(num_phonemes + 1);
    for (std::uint32_t p = 1; p <= num_phonemes; ++p) {
        PhonemeVoice &v = voices[p];
        v.f1 = float(250.0 + rng.uniform() * 650.0);    // 250..900 Hz
        v.f2 = float(850.0 + rng.uniform() * 1650.0);   // 850..2500 Hz
        v.f3 = float(2300.0 + rng.uniform() * 1200.0);  // 2300..3500 Hz
        v.a1 = float(0.5 + rng.uniform() * 0.5);
        v.a2 = float(0.3 + rng.uniform() * 0.4);
        v.a3 = float(0.1 + rng.uniform() * 0.2);
        v.noise = float(rng.uniform() * 0.25);
    }
}

const PhonemeVoice &
Synthesizer::voice(std::uint32_t phoneme) const
{
    ASR_ASSERT(phoneme >= 1 && phoneme < voices.size(),
               "phoneme id %u out of range", phoneme);
    return voices[phoneme];
}

namespace {

/** One synthesis segment: a phoneme sustained for some frames. */
struct Segment
{
    std::uint32_t phoneme;
    std::size_t frames;
};

} // namespace

/** Shared synthesis core over run-length segments. */
static AudioSignal
synthesizeSegments(const Synthesizer &synth, std::uint32_t rate,
                   std::uint64_t noise_seed,
                   const std::vector<Segment> &segments)
{
    AudioSignal out;
    out.sampleRate = rate;
    const std::size_t samples_per_frame = rate / 100;  // 10 ms frames

    Rng noise(noise_seed);
    double phase1 = 0.0, phase2 = 0.0, phase3 = 0.0;
    for (const Segment &segment : segments) {
        const PhonemeVoice &v = synth.voice(segment.phoneme);
        const std::size_t seg = samples_per_frame * segment.frames;
        for (std::size_t i = 0; i < seg; ++i) {
            // Raised-cosine envelope softens segment boundaries so
            // frames that straddle two phonemes look like natural
            // coarticulation rather than clicks.
            const double t = double(i) / double(seg);
            const double env = 0.5 * (1.0 - std::cos(2.0 * M_PI *
                std::min(t, 1.0 - t) * 2.0 + M_PI * 0.0)) * 0.9 + 0.1;

            phase1 += 2.0 * M_PI * v.f1 / rate;
            phase2 += 2.0 * M_PI * v.f2 / rate;
            phase3 += 2.0 * M_PI * v.f3 / rate;
            double s = v.a1 * std::sin(phase1) +
                       v.a2 * std::sin(phase2) +
                       v.a3 * std::sin(phase3);
            s = s * (1.0 - v.noise) +
                v.noise * (noise.uniform() * 2.0 - 1.0);
            out.samples.push_back(float(0.5 * env * s));
        }
    }
    return out;
}

AudioSignal
Synthesizer::synthesize(const std::vector<std::uint32_t> &phonemes,
                        unsigned frames_per_phone) const
{
    ASR_ASSERT(frames_per_phone >= 1, "phones need at least one frame");
    std::vector<Segment> segments;
    segments.reserve(phonemes.size());
    for (std::uint32_t p : phonemes)
        segments.push_back(Segment{p, frames_per_phone});
    return synthesizeSegments(*this, rate, noiseSeed, segments);
}

AudioSignal
Synthesizer::synthesizeFrames(
    const std::vector<std::uint32_t> &frame_phonemes) const
{
    std::vector<Segment> segments;
    for (std::uint32_t p : frame_phonemes) {
        if (!segments.empty() && segments.back().phoneme == p)
            ++segments.back().frames;
        else
            segments.push_back(Segment{p, 1});
    }
    return synthesizeSegments(*this, rate, noiseSeed, segments);
}

} // namespace asr::frontend
