/**
 * @file
 * Mel-Frequency Cepstral Coefficient (MFCC) front-end (Sec. II of the
 * paper: "the audio samples within a frame are converted into a
 * vector of features").  Classic pipeline: pre-emphasis, 25 ms
 * Hamming-windowed frames every 10 ms, power spectrum, triangular mel
 * filterbank, log, DCT-II.
 */

#ifndef ASR_FRONTEND_MFCC_HH
#define ASR_FRONTEND_MFCC_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "frontend/audio.hh"

namespace asr::frontend {

/** A feature matrix: frames x coefficients. */
using FeatureMatrix = std::vector<std::vector<float>>;

/** MFCC extraction parameters. */
struct MfccConfig
{
    std::uint32_t sampleRate = 16000;
    double frameLengthMs = 25.0;   //!< analysis window
    double frameShiftMs = 10.0;    //!< hop (the paper's 10 ms frames)
    std::size_t fftSize = 512;
    unsigned numFilters = 26;      //!< mel filterbank size
    unsigned numCeps = 13;         //!< cepstral coefficients kept
    double preEmphasis = 0.97;
    double lowFreqHz = 20.0;
    double highFreqHz = 8000.0;    //!< clamped to Nyquist
};

/** MFCC extractor; construction precomputes window and filterbank. */
class Mfcc
{
  public:
    explicit Mfcc(const MfccConfig &config = MfccConfig());

    /** Extract features; one row per 10 ms frame. */
    FeatureMatrix compute(const AudioSignal &audio) const;

    /**
     * Compute one frame's cepstra from exactly frameLength() samples.
     * @param samples the analysis window
     * @param prev    the sample immediately before the window (for
     *                pre-emphasis); pass samples[0] at signal start
     */
    std::vector<float> computeFrame(std::span<const float> samples,
                                    float prev) const;

    /** Number of frames compute() yields for @p num_samples input. */
    std::size_t numFrames(std::size_t num_samples) const;

    /** Samples per analysis window (25 ms). */
    std::size_t frameLength() const { return frameLen; }

    /** Samples per hop (10 ms). */
    std::size_t frameHop() const { return frameShift; }

    const MfccConfig &config() const { return cfg; }

    /** Mel scale helpers (exposed for tests). */
    static double hzToMel(double hz);
    static double melToHz(double mel);

  private:
    MfccConfig cfg;
    std::size_t frameLen;   //!< samples per analysis window
    std::size_t frameShift; //!< samples per hop
    std::vector<double> window;  //!< Hamming coefficients
    /** filterbank[m] = list of (bin, weight) pairs. */
    std::vector<std::vector<std::pair<std::size_t, double>>> filters;
    /** DCT-II matrix, numCeps x numFilters, orthonormal. */
    std::vector<std::vector<double>> dct;
};

/**
 * Incremental MFCC extraction for streaming sessions.
 *
 * Accepts audio in arbitrarily sized chunks and emits feature frames
 * as soon as their 25 ms analysis window is complete.  The emitted
 * frames are bit-identical to Mfcc::compute over the concatenated
 * signal: the wrapper keeps exactly the samples the next window (plus
 * one pre-emphasis sample) still needs and delegates the per-frame
 * math to Mfcc::computeFrame.
 *
 * Holds a reference to the (immutable, shareable) Mfcc; each stream
 * owns its own StreamingMfcc.
 */
class StreamingMfcc
{
  public:
    explicit StreamingMfcc(const Mfcc &mfcc);

    /** Append an audio chunk; may complete zero or more frames. */
    void push(std::span<const float> samples);

    /** @return true when at least one frame can be popped. */
    bool frameReady() const;

    /** Pop the next completed feature frame (frameReady required). */
    std::vector<float> pop();

    /** Frames popped so far. */
    std::uint64_t framesEmitted() const { return emitted; }

    /** Total samples pushed so far. */
    std::uint64_t samplesPushed() const { return pushed; }

    /** Forget all buffered audio and restart at sample zero. */
    void reset();

  private:
    const Mfcc &mfcc;

    /**
     * Pending samples: the next window plus one lead sample live at
     * buf[bufStart..].  pop() advances bufStart instead of erasing
     * (a per-frame front erase would make large pushes quadratic);
     * push() compacts the consumed prefix away, so total moves stay
     * linear in the samples pushed.
     */
    std::vector<float> buf;
    std::size_t bufStart = 0;
    bool atSignalStart = true;   //!< next window is the very first
    std::uint64_t emitted = 0;
    std::uint64_t pushed = 0;
};

/**
 * Splice the +-@p context window around frame @p f into @p out
 * ((2*context+1)*dim values).  @p row_at(i) must yield a random-
 * access range of @p dim values for absolute frame i in [0, total);
 * frames beyond the edges replicate the first/last frame.
 *
 * This is THE context-splice definition: batch scoring
 * (spliceContext / acoustic::DnnScorer) and streaming sessions
 * (server::StreamingSession) all splice through it, so the
 * edge-replication semantics -- and with them the batch/streaming
 * bit-identity contract -- live in exactly one place.
 */
template <typename RowAt>
inline void
spliceWindowInto(std::size_t f, std::size_t total, unsigned context,
                 std::size_t dim, RowAt &&row_at, std::span<float> out)
{
    std::size_t pos = 0;
    for (long off = -long(context); off <= long(context); ++off) {
        const std::size_t src = std::size_t(std::clamp<long>(
            long(f) + off, 0, long(total) - 1));
        const auto &row = row_at(src);
        for (std::size_t d = 0; d < dim; ++d)
            out[pos++] = row[d];
    }
}

/**
 * Splice @p features with +-@p context frames of context (edge
 * frames replicate), producing rows of (2*context+1)*dim values --
 * the standard DNN acoustic-model input layout.
 */
FeatureMatrix spliceContext(const FeatureMatrix &features,
                            unsigned context);

/** Per-dimension mean/variance normalization, in place. */
void normalizeFeatures(FeatureMatrix &features);

/**
 * Append delta (and with @p order == 2 also delta-delta)
 * coefficients using the standard regression formula over a
 * +-@p window frame neighbourhood (edges replicate).  Rows grow to
 * dim * (order + 1) values.
 */
FeatureMatrix appendDeltas(const FeatureMatrix &features,
                           unsigned window = 2, unsigned order = 1);

} // namespace asr::frontend

#endif // ASR_FRONTEND_MFCC_HH
