/**
 * @file
 * Mel-Frequency Cepstral Coefficient (MFCC) front-end (Sec. II of the
 * paper: "the audio samples within a frame are converted into a
 * vector of features").  Classic pipeline: pre-emphasis, 25 ms
 * Hamming-windowed frames every 10 ms, power spectrum, triangular mel
 * filterbank, log, DCT-II.
 */

#ifndef ASR_FRONTEND_MFCC_HH
#define ASR_FRONTEND_MFCC_HH

#include <cstdint>
#include <vector>

#include "frontend/audio.hh"

namespace asr::frontend {

/** A feature matrix: frames x coefficients. */
using FeatureMatrix = std::vector<std::vector<float>>;

/** MFCC extraction parameters. */
struct MfccConfig
{
    std::uint32_t sampleRate = 16000;
    double frameLengthMs = 25.0;   //!< analysis window
    double frameShiftMs = 10.0;    //!< hop (the paper's 10 ms frames)
    std::size_t fftSize = 512;
    unsigned numFilters = 26;      //!< mel filterbank size
    unsigned numCeps = 13;         //!< cepstral coefficients kept
    double preEmphasis = 0.97;
    double lowFreqHz = 20.0;
    double highFreqHz = 8000.0;    //!< clamped to Nyquist
};

/** MFCC extractor; construction precomputes window and filterbank. */
class Mfcc
{
  public:
    explicit Mfcc(const MfccConfig &config = MfccConfig());

    /** Extract features; one row per 10 ms frame. */
    FeatureMatrix compute(const AudioSignal &audio) const;

    /** Number of frames compute() yields for @p num_samples input. */
    std::size_t numFrames(std::size_t num_samples) const;

    const MfccConfig &config() const { return cfg; }

    /** Mel scale helpers (exposed for tests). */
    static double hzToMel(double hz);
    static double melToHz(double mel);

  private:
    MfccConfig cfg;
    std::size_t frameLen;   //!< samples per analysis window
    std::size_t frameShift; //!< samples per hop
    std::vector<double> window;  //!< Hamming coefficients
    /** filterbank[m] = list of (bin, weight) pairs. */
    std::vector<std::vector<std::pair<std::size_t, double>>> filters;
    /** DCT-II matrix, numCeps x numFilters, orthonormal. */
    std::vector<std::vector<double>> dct;
};

/**
 * Splice @p features with +-@p context frames of context (edge
 * frames replicate), producing rows of (2*context+1)*dim values --
 * the standard DNN acoustic-model input layout.
 */
FeatureMatrix spliceContext(const FeatureMatrix &features,
                            unsigned context);

/** Per-dimension mean/variance normalization, in place. */
void normalizeFeatures(FeatureMatrix &features);

/**
 * Append delta (and with @p order == 2 also delta-delta)
 * coefficients using the standard regression formula over a
 * +-@p window frame neighbourhood (edges replicate).  Rows grow to
 * dim * (order + 1) values.
 */
FeatureMatrix appendDeltas(const FeatureMatrix &features,
                           unsigned window = 2, unsigned order = 1);

} // namespace asr::frontend

#endif // ASR_FRONTEND_MFCC_HH
