#include "frontend/vad.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/logging.hh"

namespace asr::vad {

float
frameEnergyDb(std::span<const float> frame)
{
    double acc = 0.0;
    for (const float s : frame)
        acc += double(s) * double(s);
    const double mean =
        frame.empty() ? 0.0 : acc / double(frame.size());
    // -100 dBFS floor keeps digital silence finite.
    return float(10.0 * std::log10(std::max(mean, 1e-10)));
}

float
frameZeroCrossRate(std::span<const float> frame)
{
    if (frame.size() < 2)
        return 0.0f;
    std::size_t crossings = 0;
    for (std::size_t i = 1; i < frame.size(); ++i)
        if ((frame[i - 1] >= 0.0f) != (frame[i] >= 0.0f))
            ++crossings;
    return float(crossings) / float(frame.size() - 1);
}

namespace {

/**
 * The built-in energy + zero-crossing detector.  Raw per-frame rule:
 *
 *   speech :=  energy > floor + energyThresholdDb
 *           || (zcr > zcrThreshold
 *               && energy > floor + zcrEnergyMarginDb)
 *
 * gated by the absolute floor, where `floor` is an adaptive noise
 * estimate (instant attack downward, slow dB/frame release upward).
 * The published decision holds for hangoverFrames past the last raw
 * hit.
 */
class EnergyZcDetector final : public Detector
{
  public:
    explicit EnergyZcDetector(const VadConfig &config)
        : cfg(config)
    {
    }

    std::string_view name() const override { return "energy"; }

    bool
    classify(std::span<const float> frame) override
    {
        const float energy = frameEnergyDb(frame);
        const float zcr = frameZeroCrossRate(frame);

        if (!floorSeeded) {
            noiseFloorDb = energy;
            floorSeeded = true;
        } else if (energy < noiseFloorDb) {
            noiseFloorDb = energy;  // instant attack downward
        } else {
            noiseFloorDb += cfg.noiseRiseDbPerFrame;
        }

        const bool loud =
            energy > noiseFloorDb + cfg.energyThresholdDb;
        const bool fricative =
            zcr > cfg.zcrThreshold &&
            energy > noiseFloorDb + cfg.zcrEnergyMarginDb;
        const bool raw = energy > cfg.absoluteFloorDb &&
                         (loud || fricative);

        if (raw)
            hold = cfg.hangoverFrames + 1;
        else if (hold > 0)
            --hold;
        return hold > 0;
    }

    void
    reset() override
    {
        floorSeeded = false;
        noiseFloorDb = 0.0f;
        hold = 0;
    }

  private:
    VadConfig cfg;
    bool floorSeeded = false;
    float noiseFloorDb = 0.0f;
    unsigned hold = 0;  //!< frames of speech decision remaining
};

struct Registry
{
    std::mutex mu;
    // Ordered so registeredDetectorNames() (and every unknown-name
    // diagnostic) lists names deterministically.
    std::map<std::string, DetectorFactory, std::less<>> factories;
};

Registry &
registry()
{
    static Registry r;
    static std::once_flag seeded;
    std::call_once(seeded, [] {
        r.factories["energy"] = [](const VadConfig &cfg) {
            return std::unique_ptr<Detector>(
                new EnergyZcDetector(cfg));
        };
    });
    return r;
}

} // namespace

void
registerDetector(std::string name, DetectorFactory factory)
{
    ASR_ASSERT(!name.empty(), "detector name must be non-empty");
    ASR_ASSERT(factory != nullptr, "detector factory must be callable");
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.factories[std::move(name)] = std::move(factory);
}

std::vector<std::string>
registeredDetectorNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &[name, factory] : r.factories)
        names.push_back(name);
    return names;
}

bool
isDetectorRegistered(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.factories.find(name) != r.factories.end();
}

std::string
unknownDetectorMessage(std::string_view name)
{
    std::string msg = "unknown VAD detector '";
    msg += name;
    msg += "'; registered detectors:";
    for (const std::string &n : registeredDetectorNames()) {
        msg += " '";
        msg += n;
        msg += "'";
    }
    return msg;
}

std::unique_ptr<Detector>
tryCreateDetector(std::string_view name, const VadConfig &cfg)
{
    DetectorFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        const auto it = r.factories.find(name);
        if (it == r.factories.end())
            return nullptr;
        factory = it->second;
    }
    return factory(cfg);
}

std::unique_ptr<Detector>
createDetector(std::string_view name, const VadConfig &cfg)
{
    std::unique_ptr<Detector> detector = tryCreateDetector(name, cfg);
    if (!detector)
        fatal("%s", unknownDetectorMessage(name).c_str());
    return detector;
}

} // namespace asr::vad
