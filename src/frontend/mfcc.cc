#include "frontend/mfcc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "frontend/fft.hh"

namespace asr::frontend {

double
Mfcc::hzToMel(double hz)
{
    return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double
Mfcc::melToHz(double mel)
{
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

Mfcc::Mfcc(const MfccConfig &config)
    : cfg(config)
{
    ASR_ASSERT(cfg.sampleRate > 0, "sample rate must be positive");
    ASR_ASSERT(cfg.numCeps <= cfg.numFilters,
               "cannot keep more cepstra than filters");

    frameLen = std::size_t(cfg.frameLengthMs * cfg.sampleRate / 1000.0);
    frameShift = std::size_t(cfg.frameShiftMs * cfg.sampleRate / 1000.0);
    ASR_ASSERT(frameLen > 0 && frameShift > 0, "degenerate framing");
    ASR_ASSERT(frameLen <= cfg.fftSize,
               "FFT size smaller than the analysis window");

    // Hamming window.
    window.resize(frameLen);
    for (std::size_t i = 0; i < frameLen; ++i)
        window[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI * double(i) /
                                           double(frameLen - 1));

    // Triangular mel filterbank.
    const double high =
        std::min(cfg.highFreqHz, double(cfg.sampleRate) / 2.0);
    const double mel_lo = hzToMel(cfg.lowFreqHz);
    const double mel_hi = hzToMel(high);
    std::vector<double> centers(cfg.numFilters + 2);
    for (unsigned m = 0; m < cfg.numFilters + 2; ++m)
        centers[m] = melToHz(mel_lo + (mel_hi - mel_lo) * double(m) /
                             double(cfg.numFilters + 1));

    const std::size_t num_bins = cfg.fftSize / 2 + 1;
    const double bin_hz = double(cfg.sampleRate) / double(cfg.fftSize);
    filters.resize(cfg.numFilters);
    for (unsigned m = 0; m < cfg.numFilters; ++m) {
        const double left = centers[m];
        const double center = centers[m + 1];
        const double right = centers[m + 2];
        for (std::size_t b = 0; b < num_bins; ++b) {
            const double f = double(b) * bin_hz;
            double w = 0.0;
            if (f > left && f < center)
                w = (f - left) / (center - left);
            else if (f >= center && f < right)
                w = (right - f) / (right - center);
            if (w > 0.0)
                filters[m].emplace_back(b, w);
        }
    }

    // Orthonormal DCT-II.
    dct.assign(cfg.numCeps, std::vector<double>(cfg.numFilters));
    const double norm0 = std::sqrt(1.0 / cfg.numFilters);
    const double norm = std::sqrt(2.0 / cfg.numFilters);
    for (unsigned c = 0; c < cfg.numCeps; ++c)
        for (unsigned m = 0; m < cfg.numFilters; ++m)
            dct[c][m] = (c == 0 ? norm0 : norm) *
                        std::cos(M_PI * double(c) * (double(m) + 0.5) /
                                 double(cfg.numFilters));
}

std::size_t
Mfcc::numFrames(std::size_t num_samples) const
{
    if (num_samples < frameLen)
        return 0;
    return (num_samples - frameLen) / frameShift + 1;
}

FeatureMatrix
Mfcc::compute(const AudioSignal &audio) const
{
    ASR_ASSERT(audio.sampleRate == cfg.sampleRate,
               "audio sample rate %u does not match config %u",
               audio.sampleRate, cfg.sampleRate);

    const std::size_t frames = numFrames(audio.samples.size());
    FeatureMatrix out;
    out.reserve(frames);

    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t base = f * frameShift;
        const float prev =
            base > 0 ? audio.samples[base - 1] : audio.samples[0];
        out.push_back(computeFrame(
            std::span<const float>(audio.samples.data() + base,
                                   frameLen),
            prev));
    }
    return out;
}

std::vector<float>
Mfcc::computeFrame(std::span<const float> samples, float prev) const
{
    ASR_ASSERT(samples.size() == frameLen,
               "frame needs exactly %zu samples, got %zu", frameLen,
               samples.size());

    // Pre-emphasis + windowing. The scratch buffer is thread-local so
    // concurrent sessions sharing one const Mfcc stay race-free while
    // skipping one of the per-frame allocations (powerSpectrum and the
    // mel/ceps vectors below still allocate each call).
    static thread_local std::vector<double> buf;
    buf.resize(frameLen);
    for (std::size_t i = 0; i < frameLen; ++i) {
        const double cur = samples[i];
        const double p = i > 0 ? samples[i - 1] : prev;
        buf[i] = (cur - cfg.preEmphasis * p) * window[i];
    }

    const std::vector<double> power = powerSpectrum(buf, cfg.fftSize);

    // Mel energies (log, floored to avoid -inf on silence).
    std::vector<double> mel(cfg.numFilters);
    for (unsigned m = 0; m < cfg.numFilters; ++m) {
        double e = 0.0;
        for (const auto &[bin, w] : filters[m])
            e += power[bin] * w;
        mel[m] = std::log(std::max(e, 1e-10));
    }

    // DCT-II to cepstra.
    std::vector<float> ceps(cfg.numCeps);
    for (unsigned c = 0; c < cfg.numCeps; ++c) {
        double acc = 0.0;
        for (unsigned m = 0; m < cfg.numFilters; ++m)
            acc += dct[c][m] * mel[m];
        ceps[c] = float(acc);
    }
    return ceps;
}

StreamingMfcc::StreamingMfcc(const Mfcc &mfcc)
    : mfcc(mfcc)
{
}

void
StreamingMfcc::push(std::span<const float> samples)
{
    // Compact the consumed prefix before growing: one O(live) move
    // per push keeps the total work linear however the chunk sizes
    // and pops interleave.
    if (bufStart > 0) {
        buf.erase(buf.begin(), buf.begin() + std::ptrdiff_t(bufStart));
        bufStart = 0;
    }
    buf.insert(buf.end(), samples.begin(), samples.end());
    pushed += samples.size();
}

bool
StreamingMfcc::frameReady() const
{
    // After the first frame the buffer keeps one lead sample (the
    // one preceding the window) for pre-emphasis continuity.
    const std::size_t needed =
        mfcc.frameLength() + (atSignalStart ? 0 : 1);
    return buf.size() - bufStart >= needed;
}

std::vector<float>
StreamingMfcc::pop()
{
    ASR_ASSERT(frameReady(), "no completed frame to pop");
    const float *base = buf.data() + bufStart;
    const std::size_t window_at = atSignalStart ? 0 : 1;
    const float prev = base[0];  // == window start at signal start
    std::vector<float> frame = mfcc.computeFrame(
        std::span<const float>(base + window_at, mfcc.frameLength()),
        prev);

    // Advance one hop; keep the sample preceding the next window.
    bufStart += mfcc.frameHop() - (atSignalStart ? 1 : 0);
    atSignalStart = false;
    ++emitted;
    return frame;
}

void
StreamingMfcc::reset()
{
    buf.clear();
    bufStart = 0;
    atSignalStart = true;
    emitted = 0;
    pushed = 0;
}

FeatureMatrix
spliceContext(const FeatureMatrix &features, unsigned context)
{
    FeatureMatrix out;
    if (features.empty())
        return out;
    const std::size_t dim = features[0].size();
    const std::size_t frames = features.size();
    out.assign(frames,
               std::vector<float>((2 * context + 1) * dim, 0.0f));
    for (std::size_t f = 0; f < frames; ++f)
        spliceWindowInto(
            f, frames, context, dim,
            [&features](std::size_t i) -> const std::vector<float> & {
                return features[i];
            },
            out[f]);
    return out;
}

namespace {

/** One delta pass: regression over a +-window neighbourhood. */
FeatureMatrix
deltaPass(const FeatureMatrix &in, unsigned window)
{
    const std::size_t frames = in.size();
    const std::size_t dim = in.empty() ? 0 : in[0].size();
    double denom = 0.0;
    for (unsigned t = 1; t <= window; ++t)
        denom += 2.0 * t * t;

    FeatureMatrix out(frames, std::vector<float>(dim, 0.0f));
    for (std::size_t f = 0; f < frames; ++f) {
        for (unsigned t = 1; t <= window; ++t) {
            const std::size_t lo = std::size_t(std::clamp<long>(
                long(f) - t, 0, long(frames) - 1));
            const std::size_t hi = std::size_t(std::clamp<long>(
                long(f) + t, 0, long(frames) - 1));
            for (std::size_t d = 0; d < dim; ++d)
                out[f][d] += float(t) * (in[hi][d] - in[lo][d]);
        }
        for (std::size_t d = 0; d < dim; ++d)
            out[f][d] = float(out[f][d] / denom);
    }
    return out;
}

} // namespace

FeatureMatrix
appendDeltas(const FeatureMatrix &features, unsigned window,
             unsigned order)
{
    ASR_ASSERT(window >= 1, "delta window must be positive");
    ASR_ASSERT(order >= 1 && order <= 2,
               "only first and second order deltas are supported");
    if (features.empty())
        return {};

    const FeatureMatrix d1 = deltaPass(features, window);
    FeatureMatrix d2;
    if (order == 2)
        d2 = deltaPass(d1, window);

    FeatureMatrix out;
    out.reserve(features.size());
    for (std::size_t f = 0; f < features.size(); ++f) {
        std::vector<float> row = features[f];
        row.insert(row.end(), d1[f].begin(), d1[f].end());
        if (order == 2)
            row.insert(row.end(), d2[f].begin(), d2[f].end());
        out.push_back(std::move(row));
    }
    return out;
}

void
normalizeFeatures(FeatureMatrix &features)
{
    if (features.empty())
        return;
    const std::size_t dim = features[0].size();
    std::vector<double> mean(dim, 0.0), var(dim, 0.0);
    for (const auto &row : features)
        for (std::size_t d = 0; d < dim; ++d)
            mean[d] += row[d];
    for (std::size_t d = 0; d < dim; ++d)
        mean[d] /= double(features.size());
    for (const auto &row : features)
        for (std::size_t d = 0; d < dim; ++d) {
            const double x = row[d] - mean[d];
            var[d] += x * x;
        }
    for (std::size_t d = 0; d < dim; ++d)
        var[d] = std::sqrt(var[d] / double(features.size()) + 1e-8);
    for (auto &row : features)
        for (std::size_t d = 0; d < dim; ++d)
            row[d] = float((row[d] - mean[d]) / var[d]);
}

} // namespace asr::frontend
