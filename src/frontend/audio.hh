/**
 * @file
 * Audio containers and the synthetic speech generator.
 *
 * The paper evaluates on Librispeech recordings; those are not
 * shippable here, so we synthesize speech-like waveforms instead: each
 * phoneme id maps to a deterministic set of formant frequencies, and
 * an utterance is a concatenation of per-phoneme segments with a
 * small amount of noise and amplitude envelope.  What matters for the
 * reproduction is that (a) the MFCC pipeline sees realistic spectra
 * and (b) distinct phonemes are separable, so a small DNN can learn
 * to score them and the Viterbi search sees peaked, temporally
 * correlated likelihoods -- the same statistical drive as real speech.
 */

#ifndef ASR_FRONTEND_AUDIO_HH
#define ASR_FRONTEND_AUDIO_HH

#include <cstdint>
#include <vector>

namespace asr::frontend {

/** A mono PCM signal. */
struct AudioSignal
{
    std::vector<float> samples;
    std::uint32_t sampleRate = 16000;

    double
    durationSeconds() const
    {
        return sampleRate
                   ? double(samples.size()) / double(sampleRate)
                   : 0.0;
    }
};

/** Formant parameters of one synthetic phoneme. */
struct PhonemeVoice
{
    float f1, f2, f3;   //!< formant frequencies in Hz
    float a1, a2, a3;   //!< formant amplitudes
    float noise;        //!< fricative-style noise mix in [0,1]
};

/**
 * Deterministic synthesizer: phoneme ids map to fixed voices, and
 * synthesis with the same arguments yields identical samples.
 */
class Synthesizer
{
  public:
    /**
     * @param num_phonemes size of the phoneme inventory
     * @param sample_rate  output sample rate in Hz
     * @param seed         RNG seed for voice assignment and noise
     */
    explicit Synthesizer(std::uint32_t num_phonemes,
                         std::uint32_t sample_rate = 16000,
                         std::uint64_t seed = 7);

    /** The voice assigned to @p phoneme (1-based ids; 0 is epsilon). */
    const PhonemeVoice &voice(std::uint32_t phoneme) const;

    /**
     * Synthesize one utterance.
     * @param phonemes       phoneme sequence (ids >= 1)
     * @param frames_per_phone duration of each phoneme in 10 ms frames
     * @return the waveform
     */
    AudioSignal synthesize(const std::vector<std::uint32_t> &phonemes,
                           unsigned frames_per_phone = 6) const;

    /**
     * Synthesize from a per-frame phoneme sequence (one entry per
     * 10 ms frame, as produced by corpus sampling).  Consecutive
     * identical phonemes are merged into a single segment so dwell
     * sounds like one sustained phone instead of repeated onsets.
     */
    AudioSignal synthesizeFrames(
        const std::vector<std::uint32_t> &frame_phonemes) const;

    std::uint32_t sampleRate() const { return rate; }

  private:
    std::uint32_t rate;
    std::uint64_t noiseSeed;
    std::vector<PhonemeVoice> voices;
};

} // namespace asr::frontend

#endif // ASR_FRONTEND_AUDIO_HH
