/**
 * @file
 * Voice-activity detection: the first stage of the always-on audio
 * pipeline (VAD -> wake-word gate -> endpointer -> engine stream).
 *
 * A vad::Detector classifies one 10 ms frame of raw samples at a time
 * as speech or non-speech.  Detectors are stateful (noise-floor
 * tracking, hangover) and are selected by name from a string-keyed
 * registry mirroring search::Backend / acoustic::Backend, so a
 * tiny-DNN variant can register later without touching any caller:
 * the frontend::Endpointer, the api::Engine and the corpus suite all
 * carry one string knob.
 *
 * Built-in detector:
 *  - "energy"  frame log-energy against an adaptive noise floor,
 *              plus a zero-crossing-rate path that catches unvoiced
 *              (fricative-like) frames whose energy barely clears
 *              the floor, smoothed by a hangover counter that holds
 *              the speech decision through short intra-word dips.
 *
 * Determinism contract: classify() is a pure function of the sample
 * stream fed so far (no wall-clock, no global RNG), so identical
 * audio always yields identical frame decisions -- the property the
 * endpointing corpus suite sweeps and the engine's segmentation
 * bit-identity rests on.
 *
 * Thread safety: a Detector instance is per-stream mutable state;
 * each stream owns one privately.  The registry itself is internally
 * synchronized.
 */

#ifndef ASR_FRONTEND_VAD_HH
#define ASR_FRONTEND_VAD_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace asr::vad {

/** Knobs shared by the built-in detectors (DNN variants may ignore
 *  most of them). */
struct VadConfig
{
    /** Speech needs this much energy (dB) above the noise floor. */
    float energyThresholdDb = 9.0f;

    /**
     * Absolute silence floor in dBFS: frames below it are never
     * speech, however low the adaptive floor has drifted.
     */
    float absoluteFloorDb = -65.0f;

    /**
     * Zero-crossing-rate path for unvoiced speech: a frame whose ZCR
     * exceeds zcrThreshold counts as speech with only
     * zcrEnergyMarginDb of energy headroom over the floor.
     */
    float zcrThreshold = 0.35f;
    float zcrEnergyMarginDb = 4.5f;

    /**
     * Hold the speech decision this many frames past the last raw
     * speech frame, bridging intra-word energy dips (plosive
     * closures, phone-boundary envelopes) the endpointer must not
     * mistake for trailing silence.
     */
    unsigned hangoverFrames = 5;

    /**
     * Adaptive noise floor: it snaps down to any quieter frame
     * instantly and leaks upward this many dB per frame, so a slowly
     * rising noise bed is absorbed without ever chasing speech.
     */
    float noiseRiseDbPerFrame = 0.2f;
};

/** Classifies one frame of raw audio samples at a time. */
class Detector
{
  public:
    virtual ~Detector() = default;

    /** The registry name this detector was created under. */
    virtual std::string_view name() const = 0;

    /**
     * Classify the next 10 ms frame (any frame length >= 1; the
     * caller fixes it per stream).  Stateful: the decision may
     * depend on every frame fed since the last reset().
     * @return true when the frame is speech
     */
    virtual bool classify(std::span<const float> frame) = 0;

    /** Forget all adaptation; the next frame starts a new stream. */
    virtual void reset() = 0;
};

// ---------------------------------------------------------------------------
// Registry (string-keyed factories, mirroring search::Backend).
// ---------------------------------------------------------------------------

/** Builds a detector with @p cfg. */
using DetectorFactory =
    std::function<std::unique_ptr<Detector>(const VadConfig &cfg)>;

/**
 * Register @p factory under @p name (replacing any previous entry).
 * The built-in ("energy") is registered on first registry access.
 */
void registerDetector(std::string name, DetectorFactory factory);

/** Sorted names of every registered detector. */
std::vector<std::string> registeredDetectorNames();

/** @return true when @p name resolves to a registered detector. */
bool isDetectorRegistered(std::string_view name);

/**
 * Diagnostic for an unresolvable @p name, listing the registered
 * detectors -- the one message every entry point reports so a typo
 * always shows the valid choices.
 */
std::string unknownDetectorMessage(std::string_view name);

/**
 * Create the detector registered under @p name.
 * @return nullptr when @p name is not registered
 */
std::unique_ptr<Detector> tryCreateDetector(std::string_view name,
                                            const VadConfig &cfg);

/** As tryCreateDetector, but fatal (listing the registry) on unknown. */
std::unique_ptr<Detector> createDetector(std::string_view name,
                                         const VadConfig &cfg);

/** Frame log-energy in dBFS (mean square over the frame, floored). */
float frameEnergyDb(std::span<const float> frame);

/** Fraction of sample-to-sample sign changes in the frame. */
float frameZeroCrossRate(std::span<const float> frame);

} // namespace asr::vad

#endif // ASR_FRONTEND_VAD_HH
