#include "frontend/fft.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"

namespace asr::frontend {

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    ASR_ASSERT(isPowerOf2(n), "FFT size must be a power of two");
    if (n <= 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang =
            2.0 * M_PI / double(len) * (inverse ? 1.0 : -1.0);
        const Complex wl(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wl;
            }
        }
    }

    if (inverse) {
        for (auto &x : data)
            x /= double(n);
    }
}

std::vector<double>
powerSpectrum(const std::vector<double> &frame, std::size_t fft_size)
{
    ASR_ASSERT(isPowerOf2(fft_size), "FFT size must be a power of two");
    ASR_ASSERT(frame.size() <= fft_size,
               "frame longer than the FFT size");

    std::vector<Complex> buf(fft_size, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < frame.size(); ++i)
        buf[i] = Complex(frame[i], 0.0);
    fft(buf);

    std::vector<double> power(fft_size / 2 + 1);
    for (std::size_t i = 0; i < power.size(); ++i)
        power[i] = std::norm(buf[i]);
    return power;
}

std::vector<Complex>
naiveDft(const std::vector<Complex> &data)
{
    const std::size_t n = data.size();
    std::vector<Complex> out(n, Complex(0.0, 0.0));
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t t = 0; t < n; ++t) {
            const double ang = -2.0 * M_PI * double(k) * double(t) /
                               double(n);
            out[k] += data[t] * Complex(std::cos(ang), std::sin(ang));
        }
    }
    return out;
}

} // namespace asr::frontend
