#include "frontend/endpointer.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"

namespace asr::frontend {

// ---------------------------------------------------------------------------
// Endpointer.
// ---------------------------------------------------------------------------

Endpointer::Endpointer(const EndpointerConfig &config)
    : cfg(config),
      detector(vad::createDetector(cfg.detector, cfg.vad))
{
    ASR_ASSERT(cfg.sampleRate >= 100, "sample rate too low to frame");
    ASR_ASSERT(cfg.onsetFrames >= 1, "onset needs at least one frame");
    ASR_ASSERT(cfg.hangoverFrames >= 1,
               "endpoint needs at least one trailing-silence frame");
}

Endpointer::~Endpointer() = default;

void
Endpointer::push(std::span<const float> samples)
{
    ASR_ASSERT(!flushed, "push after flush");
    pushed += samples.size();
    const std::size_t fs = cfg.frameSamples();

    std::size_t i = 0;
    if (!frameBuf.empty()) {
        // Top the partial frame up before touching the chunk
        // directly, so frame contents never depend on chunking.
        const std::size_t take =
            std::min(fs - frameBuf.size(), samples.size());
        frameBuf.insert(frameBuf.end(), samples.begin(),
                        samples.begin() + std::ptrdiff_t(take));
        i = take;
        if (frameBuf.size() < fs)
            return;
        classifyFrame(frameBuf);
        frameBuf.clear();
    }
    // Whole frames straight out of the chunk: no copy, no quadratic
    // reassembly however large one push is.
    for (; i + fs <= samples.size(); i += fs)
        classifyFrame(samples.subspan(i, fs));
    frameBuf.assign(samples.begin() + std::ptrdiff_t(i),
                    samples.end());
}

void
Endpointer::flush()
{
    if (flushed)
        return;
    flushed = true;
    if (speaking)
        closeSegment(framesSeen);
}

EndpointEvent
Endpointer::pop()
{
    ASR_ASSERT(eventReady(), "no endpoint event queued");
    EndpointEvent ev = std::move(events.front());
    events.pop_front();
    return ev;
}

void
Endpointer::classifyFrame(std::span<const float> frame)
{
    const std::uint64_t f = framesSeen;
    const std::size_t fs = cfg.frameSamples();
    const bool raw = detector->classify(frame);

    if (!speaking) {
        preroll.emplace_back(frame.begin(), frame.end());
        if (preroll.size() > cfg.prerollFrames + cfg.onsetFrames)
            preroll.pop_front();
        onsetRun = raw ? onsetRun + 1 : 0;
        if (onsetRun >= cfg.onsetFrames) {
            // Open: the preroll ring holds exactly the frames the
            // segment starts with (the onset run plus up to
            // prerollFrames before it).
            speaking = true;
            silenceRun = 0;
            segFrames = 0;
            const std::uint64_t first_frame =
                f + 1 - std::uint64_t(preroll.size());
            segStartSample = first_frame * fs;

            EndpointEvent start;
            start.kind = EndpointEvent::Kind::SegmentStart;
            start.startSample = segStartSample;
            events.push_back(std::move(start));

            std::uint64_t at = first_frame;
            for (std::vector<float> &buffered : preroll) {
                EndpointEvent audio;
                audio.kind = EndpointEvent::Kind::Audio;
                audio.firstSample = at * fs;
                audio.audio = std::move(buffered);
                events.push_back(std::move(audio));
                ++at;
                ++segFrames;
            }
            preroll.clear();
            onsetRun = 0;
        }
        ++framesSeen;
        return;
    }

    // In speech: every frame is forwarded (the trailing hangover
    // included, so the forwarded audio is exactly [start, end)).
    EndpointEvent audio;
    audio.kind = EndpointEvent::Kind::Audio;
    audio.firstSample = f * fs;
    audio.audio.assign(frame.begin(), frame.end());
    events.push_back(std::move(audio));
    ++segFrames;

    silenceRun = raw ? 0 : silenceRun + 1;
    ++framesSeen;
    if (silenceRun >= cfg.hangoverFrames ||
        (cfg.maxSegmentFrames > 0 &&
         segFrames >= cfg.maxSegmentFrames))
        closeSegment(framesSeen);
}

void
Endpointer::closeSegment(std::uint64_t end_frame)
{
    EndpointEvent end;
    end.kind = EndpointEvent::Kind::SegmentEnd;
    end.startSample = segStartSample;
    end.endSample = end_frame * cfg.frameSamples();
    events.push_back(std::move(end));
    speaking = false;
    onsetRun = 0;
    silenceRun = 0;
    segFrames = 0;
    ++closedSegments;
}

// ---------------------------------------------------------------------------
// Wake-word gate.
// ---------------------------------------------------------------------------

WakeWordGate::WakeWordGate(const Mfcc &mfcc_front,
                           std::span<const float> template_audio,
                           float threshold)
    : mfcc(mfcc_front), threshold(threshold), stream(mfcc_front)
{
    AudioSignal phrase;
    phrase.samples.assign(template_audio.begin(),
                          template_audio.end());
    phrase.sampleRate = mfcc.config().sampleRate;
    tmpl = mfcc.compute(phrase);
    ASR_ASSERT(!tmpl.empty(),
               "wake template shorter than one analysis window "
               "(%zu samples)", template_audio.size());
    ASR_ASSERT(threshold > 0.0f && threshold <= 1.0f,
               "wake threshold must be in (0, 1]");
}

std::size_t
WakeWordGate::push(std::span<const float> samples)
{
    if (open_)
        return 0;
    const std::uint64_t before = stream.samplesPushed();
    stream.push(samples);
    while (stream.frameReady()) {
        window.push_back(stream.pop());
        if (window.size() > tmpl.size())
            window.pop_front();
        if (window.size() < tmpl.size())
            continue;
        const float score = matchScore();
        best = std::max(best, score);
        if (score < threshold)
            continue;
        open_ = true;
        // Audio is live from the end of the matching window: the
        // wake phrase itself is never forwarded downstream.
        const std::uint64_t frame_end =
            (stream.framesEmitted() - 1) * mfcc.frameHop() +
            mfcc.frameLength();
        const std::uint64_t live =
            frame_end > before ? frame_end - before : 0;
        return std::min<std::size_t>(std::size_t(live),
                                     samples.size());
    }
    return samples.size();
}

void
WakeWordGate::rearm()
{
    open_ = false;
    best = -1.0f;
    window.clear();
    stream.reset();
}

float
WakeWordGate::matchScore() const
{
    // Mean per-frame cosine similarity of the cepstra, c0 excluded:
    // the energy coefficient would make the match depend on level,
    // not spectral shape.
    double acc = 0.0;
    for (std::size_t f = 0; f < tmpl.size(); ++f) {
        const std::vector<float> &t = tmpl[f];
        const std::vector<float> &x = window[f];
        double dot = 0.0, nt = 0.0, nx = 0.0;
        for (std::size_t d = 1; d < t.size(); ++d) {
            dot += double(t[d]) * double(x[d]);
            nt += double(t[d]) * double(t[d]);
            nx += double(x[d]) * double(x[d]);
        }
        acc += dot / std::sqrt(std::max(nt * nx, 1e-12));
    }
    return float(acc / double(tmpl.size()));
}

// ---------------------------------------------------------------------------
// Synthetic labeled corpus.
// ---------------------------------------------------------------------------

EndpointCorpusUtterance
generateEndpointCorpus(const EndpointCorpusConfig &cfg)
{
    ASR_ASSERT(cfg.minSpeechFrames >= 1 &&
                   cfg.maxSpeechFrames >= cfg.minSpeechFrames,
               "degenerate speech-length range");
    ASR_ASSERT(cfg.maxGapFrames >= cfg.minGapFrames,
               "degenerate gap range");
    Rng structure(deriveSeed(cfg.seed, 0x5e61));
    Rng noise(deriveSeed(cfg.seed, 0x401e));
    const Synthesizer synth(cfg.numPhonemes, cfg.sampleRate,
                            deriveSeed(cfg.seed, 0x5f17));
    const std::size_t fs = std::size_t(cfg.sampleRate / 100);

    EndpointCorpusUtterance out;
    out.audio.sampleRate = cfg.sampleRate;
    std::vector<float> &samples = out.audio.samples;
    samples.assign(std::size_t(cfg.leadInFrames) * fs, 0.0f);

    for (unsigned s = 0; s < cfg.numSegments; ++s) {
        // One burst: random phones dwelling 3-8 frames each until
        // the drawn burst length is filled.
        const unsigned burst_frames = unsigned(structure.range(
            cfg.minSpeechFrames, cfg.maxSpeechFrames));
        std::vector<std::uint32_t> frame_phones;
        while (frame_phones.size() < burst_frames) {
            const std::uint32_t phone =
                1 + std::uint32_t(structure.below(cfg.numPhonemes));
            const unsigned dwell = unsigned(structure.range(3, 8));
            for (unsigned d = 0;
                 d < dwell && frame_phones.size() < burst_frames; ++d)
                frame_phones.push_back(phone);
        }
        const AudioSignal burst = synth.synthesizeFrames(frame_phones);

        LabeledSegment seg;
        seg.startSample = samples.size();
        samples.insert(samples.end(), burst.samples.begin(),
                       burst.samples.end());
        seg.endSample = samples.size();
        out.segments.push_back(seg);

        const unsigned gap = unsigned(structure.range(
            cfg.minGapFrames, cfg.maxGapFrames));
        samples.insert(samples.end(), std::size_t(gap) * fs, 0.0f);
    }

    // White noise over the whole recording at snrDb below the speech
    // RMS (uniform noise; the sqrt(3) factor matches RMS to target).
    double speech_energy = 0.0;
    std::uint64_t speech_samples = 0;
    for (const LabeledSegment &seg : out.segments) {
        for (std::uint64_t i = seg.startSample; i < seg.endSample;
             ++i)
            speech_energy += double(samples[std::size_t(i)]) *
                             double(samples[std::size_t(i)]);
        speech_samples += seg.endSample - seg.startSample;
    }
    if (speech_samples > 0) {
        const double speech_rms =
            std::sqrt(speech_energy / double(speech_samples));
        const double noise_rms =
            speech_rms * std::pow(10.0, -cfg.snrDb / 20.0);
        const double amp = noise_rms * std::sqrt(3.0);
        for (float &x : samples)
            x += float(noise.uniform(-amp, amp));
    }
    return out;
}

SegmentationScore
scoreSegmentation(const std::vector<LabeledSegment> &truth,
                  const std::vector<LabeledSegment> &detected,
                  std::uint32_t sample_rate)
{
    const auto overlaps = [](const LabeledSegment &a,
                             const LabeledSegment &b) {
        return a.startSample < b.endSample &&
               b.startSample < a.endSample;
    };

    SegmentationScore score;
    score.truthSegments = truth.size();
    score.detectedSegments = detected.size();

    double start_err = 0.0, end_err = 0.0;
    std::size_t matched = 0;
    for (const LabeledSegment &t : truth) {
        const auto it = std::find_if(
            detected.begin(), detected.end(),
            [&](const LabeledSegment &d) { return overlaps(t, d); });
        if (it == detected.end()) {
            ++score.missed;
            continue;
        }
        ++matched;
        const auto diff_ms = [sample_rate](std::uint64_t a,
                                           std::uint64_t b) {
            const std::uint64_t d = a > b ? a - b : b - a;
            return double(d) * 1e3 / double(sample_rate);
        };
        start_err += diff_ms(it->startSample, t.startSample);
        end_err += diff_ms(it->endSample, t.endSample);
    }
    for (const LabeledSegment &d : detected)
        if (std::none_of(truth.begin(), truth.end(),
                         [&](const LabeledSegment &t) {
                             return overlaps(t, d);
                         }))
            ++score.falseTriggers;
    if (matched > 0) {
        score.meanStartErrMs = start_err / double(matched);
        score.meanEndErrMs = end_err / double(matched);
    }
    return score;
}

std::vector<LabeledSegment>
detectSegments(Endpointer &ep, const AudioSignal &audio,
               std::size_t chunk)
{
    ASR_ASSERT(chunk >= 1, "chunk must hold samples");
    std::vector<LabeledSegment> out;
    const auto drain = [&] {
        while (ep.eventReady()) {
            const EndpointEvent ev = ep.pop();
            if (ev.kind == EndpointEvent::Kind::SegmentEnd)
                out.push_back(
                    LabeledSegment{ev.startSample, ev.endSample});
        }
    };
    const std::vector<float> &s = audio.samples;
    for (std::size_t base = 0; base < s.size(); base += chunk) {
        const std::size_t len = std::min(chunk, s.size() - base);
        ep.push(std::span<const float>(s.data() + base, len));
        drain();
    }
    ep.flush();
    drain();
    return out;
}

} // namespace asr::frontend
