/**
 * @file
 * Radix-2 FFT used by the MFCC pipeline, plus a naive DFT reference
 * for testing.
 */

#ifndef ASR_FRONTEND_FFT_HH
#define ASR_FRONTEND_FFT_HH

#include <complex>
#include <vector>

namespace asr::frontend {

using Complex = std::complex<double>;

/**
 * In-place iterative radix-2 Cooley-Tukey FFT.
 * @param data complex buffer; size must be a power of two
 * @param inverse true for the inverse transform (includes 1/N scale)
 */
void fft(std::vector<Complex> &data, bool inverse = false);

/**
 * Power spectrum of a real signal: |FFT(x)|^2 for bins 0..N/2.
 * @param frame     real input (zero-padded to @p fft_size)
 * @param fft_size  power-of-two transform size >= frame.size()
 * @return fft_size/2 + 1 power values
 */
std::vector<double> powerSpectrum(const std::vector<double> &frame,
                                  std::size_t fft_size);

/** O(N^2) reference DFT (tests only). */
std::vector<Complex> naiveDft(const std::vector<Complex> &data);

} // namespace asr::frontend

#endif // ASR_FRONTEND_FFT_HH
