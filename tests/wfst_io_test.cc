/**
 * @file
 * Tests for WFST binary serialization: round trips, corruption
 * detection, CRC behaviour.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "wfst/generate.hh"
#include "wfst/io.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

bool
sameWfst(const Wfst &a, const Wfst &b)
{
    if (a.numStates() != b.numStates() || a.numArcs() != b.numArcs() ||
        a.initialState() != b.initialState() ||
        a.hasFinalStates() != b.hasFinalStates())
        return false;
    for (StateId s = 0; s < a.numStates(); ++s) {
        const StateEntry &ea = a.state(s);
        const StateEntry &eb = b.state(s);
        if (ea.firstArc != eb.firstArc ||
            ea.numNonEpsArcs != eb.numNonEpsArcs ||
            ea.numEpsArcs != eb.numEpsArcs)
            return false;
        if (a.finalWeight(s) != b.finalWeight(s))
            return false;
    }
    for (ArcId i = 0; i < a.numArcs(); ++i) {
        const ArcEntry &x = a.arc(i);
        const ArcEntry &y = b.arc(i);
        if (x.dest != y.dest || x.weight != y.weight ||
            x.ilabel != y.ilabel || x.olabel != y.olabel)
            return false;
    }
    return true;
}

} // namespace

TEST(WfstIo, RoundTripSmall)
{
    GeneratorConfig cfg;
    cfg.numStates = 500;
    cfg.seed = 17;
    const Wfst original = generateWfst(cfg);

    const std::string path = tempPath("roundtrip_small.wfst");
    saveWfst(original, path);
    const Wfst loaded = loadWfst(path);
    EXPECT_TRUE(sameWfst(original, loaded));
    std::remove(path.c_str());
}

TEST(WfstIo, RoundTripWithFinals)
{
    GeneratorConfig cfg;
    cfg.numStates = 200;
    cfg.finalStateProb = 0.5;  // guarantee finals
    cfg.seed = 23;
    const Wfst original = generateWfst(cfg);
    ASSERT_TRUE(original.hasFinalStates());

    const std::string path = tempPath("roundtrip_finals.wfst");
    saveWfst(original, path);
    EXPECT_TRUE(sameWfst(original, loadWfst(path)));
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsCorruption)
{
    GeneratorConfig cfg;
    cfg.numStates = 100;
    cfg.seed = 31;
    const Wfst original = generateWfst(cfg);
    const std::string path = tempPath("corrupt.wfst");
    saveWfst(original, path);

    // Flip one byte in the middle of the payload.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 200, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 200, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "checksum mismatch");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsBadMagic)
{
    const std::string path = tempPath("notawfst.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 64; ++i)
        std::fputc(i, f);
    std::fclose(f);
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsTruncation)
{
    GeneratorConfig cfg;
    cfg.numStates = 100;
    cfg.seed = 37;
    const Wfst original = generateWfst(cfg);
    const std::string path = tempPath("truncated.wfst");
    saveWfst(original, path);

    // Truncate the file to half its size.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "short read");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, MissingFileFails)
{
    EXPECT_EXIT(loadWfst(tempPath("does_not_exist.wfst")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Crc32, KnownVector)
{
    // The canonical CRC-32 of "123456789" is 0xCBF43926.
    const char *s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, SeedChaining)
{
    // Chaining two halves equals the whole.
    const char *s = "hello world!";
    const auto whole = crc32(s, 12);
    auto part = crc32(s, 5);
    part = crc32(s + 5, 7, part);
    EXPECT_EQ(part, whole);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}
