/**
 * @file
 * Tests for WFST binary serialization: round trips, corruption
 * detection, CRC behaviour -- for both container versions.  v1 has
 * no compact-arcs section; v2 appends one when a CompactArcs is
 * attached, and the loader must apply the same hostile-input rigor
 * to it (size checks before allocation, CRC coverage, structural
 * validation) as to the flat arrays.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "wfst/compact.hh"
#include "wfst/generate.hh"
#include "wfst/io.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

bool
sameWfst(const Wfst &a, const Wfst &b)
{
    if (a.numStates() != b.numStates() || a.numArcs() != b.numArcs() ||
        a.initialState() != b.initialState() ||
        a.hasFinalStates() != b.hasFinalStates())
        return false;
    for (StateId s = 0; s < a.numStates(); ++s) {
        const StateEntry &ea = a.state(s);
        const StateEntry &eb = b.state(s);
        if (ea.firstArc != eb.firstArc ||
            ea.numNonEpsArcs != eb.numNonEpsArcs ||
            ea.numEpsArcs != eb.numEpsArcs)
            return false;
        if (a.finalWeight(s) != b.finalWeight(s))
            return false;
    }
    for (ArcId i = 0; i < a.numArcs(); ++i) {
        const ArcEntry &x = a.arc(i);
        const ArcEntry &y = b.arc(i);
        if (x.dest != y.dest || x.weight != y.weight ||
            x.ilabel != y.ilabel || x.olabel != y.olabel)
            return false;
    }
    return true;
}

} // namespace

TEST(WfstIo, RoundTripSmall)
{
    GeneratorConfig cfg;
    cfg.numStates = 500;
    cfg.seed = 17;
    const Wfst original = generateWfst(cfg);

    const std::string path = tempPath("roundtrip_small.wfst");
    saveWfst(original, path);
    const Wfst loaded = loadWfst(path);
    EXPECT_TRUE(sameWfst(original, loaded));
    std::remove(path.c_str());
}

TEST(WfstIo, RoundTripWithFinals)
{
    GeneratorConfig cfg;
    cfg.numStates = 200;
    cfg.finalStateProb = 0.5;  // guarantee finals
    cfg.seed = 23;
    const Wfst original = generateWfst(cfg);
    ASSERT_TRUE(original.hasFinalStates());

    const std::string path = tempPath("roundtrip_finals.wfst");
    saveWfst(original, path);
    EXPECT_TRUE(sameWfst(original, loadWfst(path)));
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsCorruption)
{
    GeneratorConfig cfg;
    cfg.numStates = 100;
    cfg.seed = 31;
    const Wfst original = generateWfst(cfg);
    const std::string path = tempPath("corrupt.wfst");
    saveWfst(original, path);

    // Flip one byte in the middle of the payload.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 200, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 200, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "checksum mismatch");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsBadMagic)
{
    const std::string path = tempPath("notawfst.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 64; ++i)
        std::fputc(i, f);
    std::fclose(f);
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, DetectsTruncation)
{
    GeneratorConfig cfg;
    cfg.numStates = 100;
    cfg.seed = 37;
    const Wfst original = generateWfst(cfg);
    const std::string path = tempPath("truncated.wfst");
    saveWfst(original, path);

    // Truncate the file to half its size.  The loader cross-checks
    // the header against the actual file size before reading any
    // payload, so this is rejected up front.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(WfstIoDeath, MissingFileFails)
{
    EXPECT_EXIT(loadWfst(tempPath("does_not_exist.wfst")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(WfstIoFuzz, RandomShapesRoundTrip)
{
    // Property sweep: random generator shapes (size, epsilon mix,
    // topology, finals) must survive a write/read cycle bit-exactly.
    Rng rng(0xf022);
    for (unsigned trial = 0; trial < 24; ++trial) {
        GeneratorConfig cfg;
        cfg.numStates = StateId(2 + rng.below(800));
        cfg.numPhonemes = std::uint32_t(1 + rng.below(64));
        cfg.numWords = std::uint32_t(1 + rng.below(500));
        cfg.epsilonFraction = rng.uniform(0.0, 0.4);
        cfg.selfLoopProb = rng.uniform(0.0, 1.0);
        cfg.finalStateProb = rng.uniform(0.0, 0.3);
        cfg.forwardEpsilonOnly = rng.bernoulli(0.5);
        cfg.wordLabelProb = rng.uniform(0.0, 0.5);
        cfg.seed = rng.next();
        const Wfst original = generateWfst(cfg);

        const std::string path =
            tempPath("fuzz_" + std::to_string(trial) + ".wfst");
        saveWfst(original, path);
        const Wfst loaded = loadWfst(path);
        EXPECT_TRUE(sameWfst(original, loaded)) << "trial " << trial;
        std::remove(path.c_str());
    }
}

namespace {

/**
 * Write a syntactically valid container whose header advertises the
 * given counts over an arbitrary payload, with a correct CRC, so
 * only the size/consistency checks can reject it.
 */
void
writeRawContainer(const std::string &path, std::uint32_t version,
                  std::uint32_t num_states, std::uint32_t num_arcs,
                  std::uint32_t initial, std::uint8_t has_finals,
                  const std::vector<std::uint8_t> &payload,
                  std::uint8_t has_compact = 0,
                  std::uint8_t weight_mode = 0,
                  std::uint8_t pad_byte = 0)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = 0x57525341;  // "ASRW"
    std::fwrite(&magic, 4, 1, f);
    std::fwrite(&version, 4, 1, f);
    std::fwrite(&num_states, 4, 1, f);
    std::fwrite(&num_arcs, 4, 1, f);
    std::fwrite(&initial, 4, 1, f);
    const std::uint8_t pad[4] = {has_finals, has_compact,
                                 weight_mode, pad_byte};
    std::fwrite(pad, 1, 4, f);
    if (!payload.empty())
        std::fwrite(payload.data(), 1, payload.size(), f);
    const std::uint32_t crc =
        crc32(payload.data(), payload.size());
    std::fwrite(&crc, 4, 1, f);
    std::fclose(f);
}

} // namespace

TEST(WfstIoFuzz, RejectsHeaderLyingAboutCounts)
{
    // A header advertising 100 M states over a tiny payload must be
    // rejected before the loader allocates gigabytes for it.
    const std::string path = tempPath("liar_counts.wfst");
    writeRawContainer(path, 1, 100'000'000, 7, 0, 0,
                      std::vector<std::uint8_t>(64, 0));
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(WfstIoFuzz, RejectsUnsupportedVersion)
{
    const std::string path = tempPath("bad_version.wfst");
    writeRawContainer(path, 99, 1, 0, 0, 0, {});
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "unsupported container version");
    std::remove(path.c_str());
}

TEST(WfstIoFuzz, RejectsOutOfRangeInitialState)
{
    const std::string path = tempPath("bad_initial.wfst");
    // One state (8 payload bytes), initial state id 5.
    writeRawContainer(path, 1, 1, 0, 5, 0,
                      std::vector<std::uint8_t>(8, 0));
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(path.c_str());
}

TEST(WfstIoFuzz, RejectsNonBooleanFinalsFlag)
{
    const std::string path = tempPath("bad_finals_flag.wfst");
    writeRawContainer(path, 1, 1, 0, 0, 7,
                      std::vector<std::uint8_t>(8, 0));
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(path.c_str());
}

TEST(WfstIoFuzzDeath, RejectsStructurallyInvalidGraph)
{
    // A container can be bit-wise intact (sizes line up, CRC valid)
    // yet describe an invalid graph; loadWfstRaw's validate() must
    // catch it.  One state whose entry claims an arc, but with the
    // arc's destination out of range.
    const std::string path = tempPath("bad_graph.wfst");
    std::vector<std::uint8_t> payload(8 + 16, 0);
    // StateEntry{firstArc=0, numNonEps=1, numEps=0}.
    payload[4] = 1;
    // ArcEntry.dest = 9 (only 1 state exists).
    payload[8] = 9;
    // ArcEntry.ilabel = 1 (non-epsilon, matching the layout).
    payload[16] = 1;
    writeRawContainer(path, 1, 1, 1, 0, 0, payload);
    EXPECT_DEATH(loadWfst(path), "out of range");
    std::remove(path.c_str());
}

TEST(WfstIoFuzz, TrailingGarbageRejected)
{
    GeneratorConfig cfg;
    cfg.numStates = 50;
    cfg.seed = 91;
    const Wfst original = generateWfst(cfg);
    const std::string path = tempPath("trailing.wfst");
    saveWfst(original, path);

    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[16] = {0};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated or corrupt");
    std::remove(path.c_str());
}

namespace {

/** Generate a graph and attach a freshly built CompactArcs. */
Wfst
graphWithCompact(WeightMode mode, std::uint64_t seed)
{
    GeneratorConfig cfg;
    cfg.numStates = 300;
    cfg.epsilonFraction = 0.2;
    cfg.finalStateProb = 0.2;
    cfg.seed = seed;
    Wfst g = generateWfst(cfg);
    g.attachCompactArcs(std::make_shared<const CompactArcs>(
        CompactArcs::build(g, mode)));
    return g;
}

std::uint32_t
fileVersion(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::uint32_t magic = 0, version = 0;
    EXPECT_EQ(std::fread(&magic, 4, 1, f), 1u);
    EXPECT_EQ(std::fread(&version, 4, 1, f), 1u);
    std::fclose(f);
    return version;
}

} // namespace

TEST(WfstIoV2, SaveSelectsVersionByAttachment)
{
    GeneratorConfig cfg;
    cfg.numStates = 100;
    cfg.seed = 41;
    Wfst g = generateWfst(cfg);

    const std::string v1 = tempPath("version_plain.wfst");
    saveWfst(g, v1);
    EXPECT_EQ(fileVersion(v1), 1u);

    g.attachCompactArcs(std::make_shared<const CompactArcs>(
        CompactArcs::build(g, WeightMode::Exact)));
    const std::string v2 = tempPath("version_compact.wfst");
    saveWfst(g, v2);
    EXPECT_EQ(fileVersion(v2), 2u);

    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(WfstIoV2, RoundTripWithCompactSection)
{
    for (const WeightMode mode :
         {WeightMode::Exact, WeightMode::Quantized}) {
        const Wfst original =
            graphWithCompact(mode, 43 + unsigned(mode));
        const std::string path = tempPath("roundtrip_compact.wfst");
        saveWfst(original, path);
        const Wfst loaded = loadWfst(path);
        EXPECT_TRUE(sameWfst(original, loaded));
        ASSERT_TRUE(loaded.hasCompactArcs());
        const CompactArcs &a = *original.compactArcs();
        const CompactArcs &b = *loaded.compactArcs();
        EXPECT_EQ(b.weightMode(), mode);
        EXPECT_EQ(b.numArcs(), a.numArcs());
        EXPECT_EQ(b.payloadBytes(), a.payloadBytes());
        // Decoded arcs must round-trip bit-for-bit: the payload and
        // dequant table are preserved verbatim.
        std::vector<ArcEntry> x(16), y(16);
        for (StateId s = 0; s < loaded.numStates(); ++s) {
            const auto all = loaded.arcs(s);
            x.resize(all.size());
            y.resize(all.size());
            ASSERT_EQ(a.decodeState(s, x.data()), all.size());
            ASSERT_EQ(b.decodeState(s, y.data()), all.size());
            for (std::size_t i = 0; i < all.size(); ++i) {
                ASSERT_EQ(x[i].dest, y[i].dest);
                ASSERT_EQ(x[i].ilabel, y[i].ilabel);
                ASSERT_EQ(x[i].olabel, y[i].olabel);
                ASSERT_EQ(x[i].weight, y[i].weight);
            }
        }
        std::remove(path.c_str());
    }
}

TEST(WfstIoV2, PlainLoadDoesNotInventCompactArcs)
{
    GeneratorConfig cfg;
    cfg.numStates = 80;
    cfg.seed = 47;
    const Wfst g = generateWfst(cfg);
    const std::string path = tempPath("plain_no_compact.wfst");
    saveWfst(g, path);
    const Wfst loaded = loadWfst(path);
    EXPECT_FALSE(loaded.hasCompactArcs());
    EXPECT_EQ(loaded.compactArcs(), nullptr);
    std::remove(path.c_str());
}

TEST(WfstIoV2Death, DetectsCorruptionInCompactSection)
{
    const Wfst g = graphWithCompact(WeightMode::Quantized, 53);
    const std::string path = tempPath("corrupt_compact.wfst");
    saveWfst(g, path);

    // Flip a byte near the end of the file -- inside the compact
    // payload / dequant table, well past the flat arrays -- and the
    // CRC must still catch it.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -12, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -12, SEEK_END);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "checksum mismatch");
    std::remove(path.c_str());
}

TEST(WfstIoV2Death, DetectsTruncatedCompactSection)
{
    const Wfst g = graphWithCompact(WeightMode::Exact, 59);
    const std::string path = tempPath("truncated_compact.wfst");
    saveWfst(g, path);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    // Cut into the compact section (the last ~quarter of the file).
    ASSERT_EQ(truncate(path.c_str(), size - size / 4), 0);

    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(WfstIoV2Death, RejectsHostileCompactPayloadLength)
{
    // A v2 header whose compact section claims a terabyte payload
    // over a tiny file: the whole-file size check must reject it
    // before any allocation happens.
    const std::string path = tempPath("hostile_compact_len.wfst");
    std::vector<std::uint8_t> body(8, 0);  // one zeroed StateEntry
    const std::uint64_t huge = 1ull << 40;
    const std::uint8_t *hb =
        reinterpret_cast<const std::uint8_t *>(&huge);
    body.insert(body.end(), hb, hb + sizeof(huge));
    writeRawContainer(path, 2, 1, 0, 0, 0, body, 1, 0, 0);
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(WfstIoV2Death, RejectsCompactSectionShorterThanLengthField)
{
    // hasCompact promised but the file ends before the u64 length.
    const std::string path = tempPath("no_compact_len.wfst");
    writeRawContainer(path, 2, 1, 0, 0, 0,
                      std::vector<std::uint8_t>(8, 0), 1, 0, 0);
    EXPECT_EXIT(loadWfst(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(WfstIoV2Death, RejectsCorruptFlagBytes)
{
    const std::vector<std::uint8_t> body(8, 0);

    // v1 must have all-zero trailing flag bytes.
    const std::string p1 = tempPath("v1_nonzero_flags.wfst");
    writeRawContainer(p1, 1, 1, 0, 0, 0, body, 1, 0, 0);
    EXPECT_EXIT(loadWfst(p1), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(p1.c_str());

    // hasCompact is boolean.
    const std::string p2 = tempPath("bad_has_compact.wfst");
    writeRawContainer(p2, 2, 1, 0, 0, 0, body, 9, 0, 0);
    EXPECT_EXIT(loadWfst(p2), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(p2.c_str());

    // weightMode must name a WeightMode...
    const std::string p3 = tempPath("bad_weight_mode.wfst");
    writeRawContainer(p3, 2, 1, 0, 0, 0, body, 1, 9, 0);
    EXPECT_EXIT(loadWfst(p3), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(p3.c_str());

    // ...and may only be set alongside a compact section.
    const std::string p4 = tempPath("mode_without_compact.wfst");
    writeRawContainer(p4, 2, 1, 0, 0, 0, body, 0, 1, 0);
    EXPECT_EXIT(loadWfst(p4), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(p4.c_str());

    // The final pad byte stays reserved-zero in both versions.
    const std::string p5 = tempPath("nonzero_pad.wfst");
    writeRawContainer(p5, 2, 1, 0, 0, 0, body, 0, 0, 5);
    EXPECT_EXIT(loadWfst(p5), ::testing::ExitedWithCode(1),
                "corrupt header");
    std::remove(p5.c_str());
}

TEST(Crc32, KnownVector)
{
    // The canonical CRC-32 of "123456789" is 0xCBF43926.
    const char *s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, SeedChaining)
{
    // Chaining two halves equals the whole.
    const char *s = "hello world!";
    const auto whole = crc32(s, 12);
    auto part = crc32(s, 5);
    part = crc32(s + 5, 7, part);
    EXPECT_EQ(part, whole);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}
