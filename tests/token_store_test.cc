/**
 * @file
 * Tests for the TokenStore search rewrite: the epoch-tagged flat
 * hash itself (insert/improve discipline, growth, epoch rollover),
 * the backpointer-arena garbage collector (bit-identity under load,
 * bounded streaming memory), the skip-doomed-appends optimization,
 * the cached streamPartial, and a property sweep pinning the
 * optimized decoder to the frozen baseline, the brute-force
 * reference and the accelerator model.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "acoustic/scorer.hh"
#include "common/logging.hh"
#include "decoder/baseline.hh"
#include "decoder/reference.hh"
#include "decoder/token_store.hh"
#include "decoder/viterbi.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::decoder;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

wfst::Wfst
netFor(std::uint64_t seed, wfst::StateId states = 400)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = states;
    gcfg.numPhonemes = 32;
    gcfg.numWords = 60;
    gcfg.forwardEpsilonOnly = (seed % 2) == 0;
    gcfg.epsilonFraction = (seed % 3) == 0 ? 0.25 : 0.115;
    gcfg.seed = seed;
    return wfst::generateWfst(gcfg);
}

acoustic::AcousticLikelihoods
scoresFor(std::uint64_t seed, std::size_t frames = 18)
{
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 32;
    scfg.seed = seed * 11 + 3;
    return acoustic::SyntheticScorer(scfg).generate(frames);
}

void
expectSameDecode(const DecodeResult &a, const DecodeResult &b,
                 const char *what)
{
    EXPECT_EQ(a.words, b.words) << what;
    EXPECT_EQ(a.score, b.score) << what;  // bitwise, not NEAR
    EXPECT_EQ(a.bestState, b.bestState) << what;
    EXPECT_EQ(a.stats.tokensExpanded, b.stats.tokensExpanded) << what;
    EXPECT_EQ(a.stats.tokensPruned, b.stats.tokensPruned) << what;
    EXPECT_EQ(a.stats.arcsExpanded, b.stats.arcsExpanded) << what;
    EXPECT_EQ(a.stats.epsArcsExpanded, b.stats.epsArcsExpanded)
        << what;
}

} // namespace

// ---- The store itself ----

TEST(TokenStore, InsertImproveAndWorklistDiscipline)
{
    TokenStore store(16);
    // New token: queued pending.
    Token *t = store.relax(7, -1.0f);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.worklistSize(), 1u);
    EXPECT_FLOAT_EQ(store.bestScore(), -1.0f);

    // Worse score: rejected, nothing queued.
    EXPECT_EQ(store.relax(7, -2.0f), nullptr);
    EXPECT_EQ(store.worklistSize(), 1u);

    // Improving a still-pending token must not requeue it.
    ASSERT_NE(store.relax(7, -0.5f), nullptr);
    EXPECT_EQ(store.worklistSize(), 1u);
    EXPECT_FLOAT_EQ(store.bestScore(), -0.5f);

    // Read it (clears pending), then improve: requeued.
    const Token read = store.readForProcess(0);
    EXPECT_EQ(read.state, 7u);
    EXPECT_FLOAT_EQ(read.score, -0.5f);
    ASSERT_NE(store.relax(7, -0.25f), nullptr);
    EXPECT_EQ(store.worklistSize(), 2u);
    EXPECT_EQ(store.size(), 1u);  // still one distinct token
}

TEST(TokenStore, GrowthPreservesTokensAndWorklist)
{
    TokenStore store(4);  // forces several doublings
    const std::size_t n = 300;
    for (std::uint32_t s = 0; s < n; ++s)
        ASSERT_NE(store.relax(s * 977u + 3u, -float(s)), nullptr);
    ASSERT_EQ(store.size(), n);
    ASSERT_EQ(store.worklistSize(), n);
    EXPECT_GE(store.capacity(), 2 * n);  // <= 50% load kept

    // Every token survives the rehashes with its score, in
    // insertion order.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(store.entry(i).state, i * 977u + 3u);
        EXPECT_FLOAT_EQ(store.entry(i).score, -float(i));
        EXPECT_EQ(store.readForProcess(i).state, i * 977u + 3u);
    }
}

TEST(TokenStore, ClearIsEpochBumpNotWipe)
{
    TokenStore store(16);
    ASSERT_NE(store.relax(1, -1.0f), nullptr);
    ASSERT_NE(store.relax(2, -2.0f), nullptr);
    const std::uint32_t cap = store.capacity();
    const std::uint32_t e0 = store.epoch();

    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.worklistSize(), 0u);
    EXPECT_EQ(store.capacity(), cap);
    EXPECT_EQ(store.epoch(), e0 + 1);
    EXPECT_FLOAT_EQ(store.bestScore(), wfst::kLogZero);

    // Stale slots must not resurrect: re-relax sees a fresh insert.
    Token *t = store.relax(1, -5.0f);  // worse than the stale -1.0
    ASSERT_NE(t, nullptr);
    EXPECT_FLOAT_EQ(t->score, -5.0f);
    EXPECT_EQ(t->backpointer, -1);
    EXPECT_EQ(store.size(), 1u);
}

TEST(TokenStore, EpochRolloverWipesStaleTags)
{
    TokenStore store(16);
    // Plant a token, then jump the epoch to the last value before
    // wrap-around.
    ASSERT_NE(store.relax(3, -1.0f), nullptr);
    store.clear();
    store.setEpochForTest(std::numeric_limits<std::uint32_t>::max());

    // A token written at epoch 2^32-1 ...
    ASSERT_NE(store.relax(3, -7.0f), nullptr);
    EXPECT_EQ(store.size(), 1u);

    // ... must not survive the wrap: clear() wipes every tag and
    // restarts at epoch 1.
    store.clear();
    EXPECT_EQ(store.epoch(), 1u);
    EXPECT_EQ(store.size(), 0u);
    Token *t = store.relax(3, -9.0f);
    ASSERT_NE(t, nullptr);
    EXPECT_FLOAT_EQ(t->score, -9.0f);  // fresh insert, not an improve
    EXPECT_EQ(store.size(), 1u);

    // And tokens from the pre-jump epochs (tag 1, 2) cannot alias
    // the post-wrap epochs either: state 3's old tag was wiped too.
    store.clear();  // epoch 2 now
    Token *u = store.relax(3, -11.0f);
    ASSERT_NE(u, nullptr);
    EXPECT_FLOAT_EQ(u->score, -11.0f);
}

TEST(TokenStoreDeath, EpochJumpRequiresEmptyStore)
{
    TokenStore store(16);
    ASSERT_NE(store.relax(1, -1.0f), nullptr);
    EXPECT_DEATH(store.setEpochForTest(100),
                 "only safe on an empty store");
}

// Decoding across an epoch rollover mid-utterance must not change
// results: the store's wrap handling is invisible to the search.
TEST(TokenStore, DecodeAcrossEpochRolloverIsBitIdentical)
{
    const wfst::Wfst net = netFor(5);
    const auto scores = scoresFor(5, 24);
    DecoderConfig cfg;
    cfg.beam = 6.0f;

    ViterbiDecoder plain(net, cfg);
    const auto expected = plain.decode(scores);

    // Walk a store across the wrap boundary the way the decoder
    // does (one clear per frame per store) and check each epoch
    // behaves like a fresh frame.
    TokenStore store(16);
    store.setEpochForTest(
        std::numeric_limits<std::uint32_t>::max() - 10);
    for (int gen = 0; gen < 30; ++gen) {
        Token *t = store.relax(1, -1.0f);
        ASSERT_NE(t, nullptr);  // always a fresh insert, never stale
        EXPECT_EQ(t->backpointer, -1);
        EXPECT_EQ(store.size(), 1u);
        store.clear();
    }

    // And the decoder itself stays bit-identical across many
    // utterances on one instance (each walks the epochs forward).
    ViterbiDecoder reused(net, cfg);
    for (int round = 0; round < 5; ++round) {
        const auto r = reused.decode(scores);
        expectSameDecode(r, expected, "decoder reuse round");
    }
}

// ---- Arena GC ----

TEST(ArenaGc, BitIdenticalToNoGcDecode)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const wfst::Wfst net = netFor(seed);
        const auto scores = scoresFor(seed, 40);

        DecoderConfig plain;
        plain.beam = 8.0f;
        ViterbiDecoder noGc(net, plain);
        const auto expected = noGc.decode(scores);

        // An aggressively small watermark forces many collections.
        DecoderConfig gc = plain;
        gc.arenaGcWatermark = 64;
        ViterbiDecoder withGc(net, gc);
        const auto r = withGc.decode(scores);

        expectSameDecode(r, expected, "GC vs no-GC");
        EXPECT_GT(r.stats.arenaGcRuns, 0u) << "seed " << seed;
        EXPECT_GT(r.stats.arenaEntriesReclaimed, 0u)
            << "seed " << seed;
    }
}

TEST(ArenaGc, StreamingPartialsSurviveCollection)
{
    const wfst::Wfst net = netFor(2);
    const auto scores = scoresFor(2, 30);
    DecoderConfig plain;
    plain.beam = 8.0f;
    DecoderConfig gc = plain;
    gc.arenaGcWatermark = 64;

    ViterbiDecoder a(net, plain), b(net, gc);
    a.streamBegin();
    b.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        a.streamFrame(scores.frame(f));
        b.streamFrame(scores.frame(f));
        // The partial hypothesis must be identical even when b's
        // arena was just compacted (indices moved under the cache).
        EXPECT_EQ(a.streamPartial(), b.streamPartial())
            << "frame " << f;
    }
    expectSameDecode(b.streamFinish(), a.streamFinish(),
                     "streaming GC");
}

TEST(ArenaGc, LongSessionStaysUnderWatermark)
{
    // A 10k-frame streaming session (100 seconds of speech) must
    // hold the arena under the watermark throughout; without GC the
    // arena grows without bound (checked via the reclaim counter).
    const wfst::Wfst net = netFor(3, 600);
    const auto scores = scoresFor(3, 50);

    DecoderConfig cfg;
    cfg.beam = 6.0f;
    cfg.arenaGcWatermark = 20'000;
    ViterbiDecoder dec(net, cfg);
    dec.streamBegin();
    for (std::size_t f = 0; f < 10'000; ++f)
        dec.streamFrame(scores.frame(f % scores.numFrames()));
    const auto r = dec.streamFinish();

    EXPECT_LE(r.stats.arenaPeakEntries, cfg.arenaGcWatermark);
    EXPECT_GT(r.stats.arenaGcRuns, 0u);
    // The stream appended far more than the watermark in total.
    EXPECT_GT(r.stats.arenaEntriesReclaimed,
              4 * cfg.arenaGcWatermark);
}

// ---- streamPartial caching ----

TEST(StreamPartial, CachedReferenceStaysCorrect)
{
    const wfst::Wfst net = netFor(4);
    const auto scores = scoresFor(4, 16);
    DecoderConfig cfg;
    cfg.beam = 8.0f;

    ViterbiDecoder dec(net, cfg);
    BaselineViterbiDecoder oracle(net, cfg);
    dec.streamBegin();
    oracle.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        dec.streamFrame(scores.frame(f));
        oracle.streamFrame(scores.frame(f));
        // Repeated calls between frames hit the cache; all must
        // agree with the baseline's fresh backtrack.
        const auto &p1 = dec.streamPartial();
        const auto &p2 = dec.streamPartial();
        EXPECT_EQ(&p1, &p2);  // same buffer, no realloc
        EXPECT_EQ(p1, oracle.streamPartial()) << "frame " << f;
    }
    expectSameDecode(dec.streamFinish(), oracle.streamFinish(),
                     "partial-cache decode");
}

// ---- Doomed-append skipping ----

TEST(SkipDoomedAppends, SkipsHappenAndResultsMatchBaseline)
{
    std::uint64_t total_skips = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const wfst::Wfst net = netFor(seed, 800);
        const auto scores = scoresFor(seed, 25);
        DecoderConfig cfg;
        cfg.beam = 3.0f;  // tight beam: many doomed candidates

        ViterbiDecoder opt(net, cfg);
        BaselineViterbiDecoder base(net, cfg);
        const auto r = opt.decode(scores);
        expectSameDecode(r, base.decode(scores), "skip-append");
        total_skips += r.stats.bpAppendsSkipped;
        // The skips are real savings: every improvement the baseline
        // recorded is either an arena append or a counted skip here.
        EXPECT_GT(r.stats.arenaPeakEntries, 0u);
    }
    EXPECT_GT(total_skips, 0u);
}

TEST(SkipDoomedAppends, FinalWeightDecodesKeepEveryAppend)
{
    // With final weights a sub-threshold token of the last frame can
    // still win, so the decoder must not skip next-frame appends --
    // and must stay identical to the baseline.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const wfst::Wfst net = netFor(seed, 300);
        const auto scores = scoresFor(seed, 15);
        DecoderConfig cfg;
        cfg.beam = 2.5f;
        cfg.useFinalWeights = true;

        ViterbiDecoder opt(net, cfg);
        BaselineViterbiDecoder base(net, cfg);
        const auto a = opt.decode(scores);
        const auto b = base.decode(scores);
        EXPECT_EQ(a.words, b.words) << "seed " << seed;
        EXPECT_EQ(a.score, b.score) << "seed " << seed;
        EXPECT_EQ(a.bestState, b.bestState) << "seed " << seed;
    }
}

// ---- Property sweep: optimized == baseline == reference == accel --

struct SweepCase
{
    std::uint64_t seed;
    float beam;
    std::uint32_t maxActive;
};

void
PrintTo(const SweepCase &c, std::ostream *os)
{
    *os << "seed=" << c.seed << " beam=" << c.beam
        << " maxActive=" << c.maxActive;
}

class TokenStoreSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(TokenStoreSweep, MatchesBaselineBitwise)
{
    const SweepCase &c = GetParam();
    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    DecoderConfig cfg;
    cfg.beam = c.beam;
    cfg.maxActive = c.maxActive;

    ViterbiDecoder opt(net, cfg);
    BaselineViterbiDecoder base(net, cfg);
    expectSameDecode(opt.decode(scores), base.decode(scores),
                     "sweep vs baseline");

    // And with GC thrashing, still bitwise identical.
    DecoderConfig gc = cfg;
    gc.arenaGcWatermark = 128;
    ViterbiDecoder gcDec(net, gc);
    BaselineViterbiDecoder base2(net, cfg);
    expectSameDecode(gcDec.decode(scores), base2.decode(scores),
                     "sweep vs baseline, GC on");
}

TEST_P(TokenStoreSweep, MatchesAccelModel)
{
    const SweepCase &c = GetParam();
    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    DecoderConfig cfg;
    cfg.beam = c.beam;
    cfg.maxActive = c.maxActive;
    ViterbiDecoder opt(net, cfg);
    const auto sw = opt.decode(scores);

    accel::AcceleratorConfig acfg;
    acfg.beam = c.beam;
    acfg.maxActive = c.maxActive;
    accel::Accelerator acc(net, acfg);
    const auto hw = acc.decode(scores, /*run_timing=*/false);

    EXPECT_EQ(hw.words, sw.words);
    EXPECT_NEAR(hw.score, sw.score, 1e-3f);
    EXPECT_EQ(hw.bestState, sw.bestState);
}

TEST_P(TokenStoreSweep, WideBeamMatchesFullViterbiReference)
{
    // The brute-force DP reference has no beam; compare at an
    // effectively infinite beam where pruning never fires.
    const SweepCase &c = GetParam();
    if (c.beam < 1e8f || c.maxActive != 0)
        GTEST_SKIP() << "reference comparison needs no pruning";

    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    DecoderConfig cfg;
    cfg.beam = c.beam;
    ViterbiDecoder opt(net, cfg);
    const auto r = opt.decode(scores);
    const auto ref = fullViterbiReference(net, scores);
    EXPECT_EQ(r.words, ref.words);
    EXPECT_NEAR(r.score, ref.score, 1e-3f);
}

namespace {

std::vector<SweepCase>
sweepGrid()
{
    std::vector<SweepCase> cases;
    const float beams[] = {2.0f, 6.0f, 10.0f, 1e9f};
    const std::uint32_t caps[] = {0, 8, 64};
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        for (const float beam : beams)
            for (const std::uint32_t cap : caps)
                cases.push_back({seed, beam, cap});
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(SeedsBeamsCaps, TokenStoreSweep,
                         ::testing::ValuesIn(sweepGrid()));
