/**
 * @file
 * Tests for the lexicon WFST builder and the random vocabulary
 * generator, including an end-to-end recognition check with
 * truth-driven acoustic scores.
 */

#include <gtest/gtest.h>

#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "decoder/wer.hh"
#include "wfst/lexicon.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

std::vector<LexiconWord>
tinyLexicon()
{
    return {
        LexiconWord{"go", {1, 2}},
        LexiconWord{"stop", {3, 4, 5}},
        LexiconWord{"left", {6, 2, 7}},
    };
}

} // namespace

TEST(Lexicon, StructureOfChains)
{
    SymbolTable words;
    const Wfst net = buildLexiconWfst(tinyLexicon(), words);
    // 1 start + 2 + 3 + 3 phoneme states.
    EXPECT_EQ(net.numStates(), 9u);
    EXPECT_EQ(net.initialState(), 0u);
    EXPECT_EQ(words.find("go"), 1u);
    EXPECT_EQ(words.find("stop"), 2u);
    EXPECT_EQ(words.find("left"), 3u);

    // The start state fans out into every word's first phoneme.
    EXPECT_EQ(net.state(0).numNonEpsArcs, 3u);
    EXPECT_EQ(net.state(0).numEpsArcs, 0u);

    // Every phoneme state carries a self-loop with its own phoneme.
    for (StateId s = 1; s < net.numStates(); ++s) {
        bool has_self = false;
        for (const ArcEntry &a : net.nonEpsArcs(s))
            has_self = has_self || a.dest == s;
        EXPECT_TRUE(has_self) << "state " << s;
    }
    EXPECT_TRUE(net.hasFinalStates());
    net.validate();
}

TEST(Lexicon, WordEmittedOnLastPhoneme)
{
    SymbolTable words;
    const Wfst net = buildLexiconWfst(tinyLexicon(), words);
    // Follow "go": 0 -p1-> s -p2(word "go")-> t -eps-> 0.
    const ArcEntry &first = net.nonEpsArcs(0)[0];
    EXPECT_EQ(first.ilabel, 1u);
    EXPECT_EQ(first.olabel, kNoWord);
    const StateId s1 = first.dest;
    const ArcEntry *advance = nullptr;
    for (const ArcEntry &a : net.nonEpsArcs(s1))
        if (a.dest != s1)
            advance = &a;
    ASSERT_NE(advance, nullptr);
    EXPECT_EQ(advance->ilabel, 2u);
    EXPECT_EQ(words.name(advance->olabel), "go");
    // Word-end state loops back to the start via epsilon.
    const StateId end = advance->dest;
    ASSERT_EQ(net.state(end).numEpsArcs, 1u);
    EXPECT_EQ(net.epsArcs(end)[0].dest, 0u);
    EXPECT_GE(net.finalWeight(end), -1e-6f);
}

TEST(Lexicon, RandomLexiconDistinctPronunciations)
{
    Rng rng(3);
    const auto lex = makeRandomLexicon(50, 24, rng);
    ASSERT_EQ(lex.size(), 50u);
    std::set<std::vector<PhonemeId>> prons;
    for (const auto &w : lex) {
        EXPECT_GE(w.phonemes.size(), 3u);
        EXPECT_LE(w.phonemes.size(), 6u);
        for (std::size_t i = 1; i < w.phonemes.size(); ++i)
            EXPECT_NE(w.phonemes[i], w.phonemes[i - 1]);
        EXPECT_TRUE(prons.insert(w.phonemes).second)
            << "duplicate pronunciation for " << w.name;
    }
}

TEST(Lexicon, RecognizesSpokenSequence)
{
    // Truth-driven scores over a spoken two-word sequence must
    // decode to exactly those words.
    SymbolTable words;
    const Wfst net = buildLexiconWfst(tinyLexicon(), words);

    // "stop go" with 3-frame dwell per phoneme.
    std::vector<PhonemeId> frames_phones;
    for (PhonemeId p : {3, 4, 5, 1, 2})
        for (int d = 0; d < 3; ++d)
            frames_phones.push_back(p);

    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 7;
    scfg.truthBoost = 10.0;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(
        frames_phones.size(), frames_phones);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 12.0f;
    decoder::ViterbiDecoder dec(net, dcfg);
    const auto result = dec.decode(scores);

    std::vector<WordId> expect{words.find("stop"), words.find("go")};
    EXPECT_EQ(result.words, expect);
}

TEST(LexiconDeath, EmptyPronunciationRejected)
{
    SymbolTable words;
    std::vector<LexiconWord> bad{{"oops", {}}};
    EXPECT_DEATH(buildLexiconWfst(bad, words),
                 "empty pronunciation");
}

TEST(SynthesizeFrames, MergesRuns)
{
    frontend::Synthesizer synth(8);
    // 6 frames in two runs -> 60 ms of audio either way.
    const auto merged =
        synth.synthesizeFrames({1, 1, 1, 2, 2, 2});
    EXPECT_NEAR(merged.durationSeconds(), 0.06, 1e-9);
    // A merged run must differ from per-frame segmentation (the
    // envelope is applied per segment).
    const auto chopped = synth.synthesize({1, 1, 1, 2, 2, 2}, 1);
    ASSERT_EQ(merged.samples.size(), chopped.samples.size());
    bool differs = false;
    for (std::size_t i = 0; i < merged.samples.size(); ++i)
        differs = differs || merged.samples[i] != chopped.samples[i];
    EXPECT_TRUE(differs);
}
