/**
 * @file
 * Unit tests for the common utilities: bit helpers, the reproducible
 * RNG, unit formatting, the table renderer, and the CPU-feature
 * dispatch predicate behind the SIMD kernels.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/cpuinfo.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace asr;

TEST(Bits, PowerOfTwoPredicate)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

/** floorLog2/ceilLog2/nextPowerOf2 agree on a sweep of values. */
class BitsLog2 : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitsLog2, Log2Identities)
{
    const std::uint64_t v = GetParam();
    const unsigned fl = floorLog2(v);
    EXPECT_LE(1ull << fl, v);
    if (fl < 63) {
        EXPECT_GT(1ull << (fl + 1), v);
    }
    const unsigned cl = ceilLog2(v);
    EXPECT_GE(1ull << cl, v);
    EXPECT_EQ(nextPowerOf2(v), 1ull << cl);
    if (isPowerOf2(v))
        EXPECT_EQ(fl, cl);
    else
        EXPECT_EQ(cl, fl + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsLog2,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15,
                                           16, 17, 63, 64, 65, 1000,
                                           1024, 4095, 4096, 4097,
                                           (1ull << 32) - 1,
                                           1ull << 32,
                                           (1ull << 32) + 1));

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(0, 3), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndBounds)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform(-2.0, 4.0);
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.01);
}

TEST(Rng, PowerLawBoundsAndShape)
{
    Rng rng(13);
    const unsigned kmax = 770;
    std::uint64_t ones = 0, total = 0;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const unsigned k = rng.powerLaw(2.42, kmax);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, kmax);
        ones += k == 1;
        sum += k;
        ++total;
    }
    // Power laws are bottom-heavy: degree 1 dominates, and the mean
    // sits near the WFST's 2.56 arcs/state for the default alpha.
    EXPECT_GT(double(ones) / double(total), 0.4);
    EXPECT_NEAR(sum / double(total), 2.7, 0.7);
}

TEST(Units, ByteLiterals)
{
    EXPECT_EQ(512_KiB, 512ull * 1024);
    EXPECT_EQ(1_MiB, 1024ull * 1024);
    EXPECT_EQ(4_GiB, 4ull * 1024 * 1024 * 1024);
}

TEST(Units, CycleConversions)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(600000000, 600e6), 1.0);
    EXPECT_EQ(secondsToCycles(1.0, 600e6), 600000000ull);
    EXPECT_EQ(secondsToCycles(0.5, 600e6), 300000000ull);
}

TEST(Units, Formatting)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(512_KiB), "512 KB");
    EXPECT_EQ(formatBytes(1_GiB), "1 GB");
    EXPECT_EQ(formatSeconds(0.002), "2.000 ms");
    EXPECT_EQ(formatSeconds(2.5e-6), "2.500 us");
}

TEST(CpuInfo, DispatchPredicateHonorsTestOverride)
{
    // Whatever the host supports, forcing scalar must win: the one
    // predicate the kernels consult goes false and the reported
    // level follows.  Clearing restores the hardware answer.
    const bool hw = cpu::cpuSupportsAvx2();
    cpu::setForceScalarForTest(true);
    EXPECT_TRUE(cpu::simdForcedOff());
    EXPECT_FALSE(cpu::hasAvx2());
    EXPECT_EQ(cpu::simdLevel(), "scalar");
    // The override never rewrites the hardware probe itself.
    EXPECT_EQ(cpu::cpuSupportsAvx2(), hw);

    // setForceScalarForTest(false) overrides even an ASR_FORCE_SCALAR
    // environment: dispatch follows the hardware alone.
    cpu::setForceScalarForTest(false);
    EXPECT_FALSE(cpu::simdForcedOff());
    EXPECT_EQ(cpu::hasAvx2(), hw);

    cpu::clearForceScalarForTest();
    EXPECT_EQ(cpu::cpuSupportsAvx2(), hw);
}

TEST(CpuInfo, SimdLevelMatchesPredicate)
{
    EXPECT_EQ(cpu::simdLevel(),
              cpu::hasAvx2() ? "avx2+fma" : "scalar");
    // Probe caching: repeated calls must agree.
    const bool first = cpu::hasAvx2();
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(cpu::hasAvx2(), first);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row().add("alpha").add(std::uint64_t(10));
    t.row().add("beta").addPercent(0.5);
    t.row().add("gamma").addRatio(1.87);
    const std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("1.87x"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|---"), std::string::npos);
}
