/**
 * @file
 * Tests for the statistics substrate: histograms and counter sets.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace asr::sim;

TEST(Histogram, BasicMoments)
{
    Histogram h(1.0, 16);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileOnUniformSamples)
{
    Histogram h(1.0, 128);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i));
    // The 50% quantile of 0..99 with unit buckets is ~50.
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
    EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(Histogram, OverflowBucketStillTracksMax)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ClearResets)
{
    Histogram h(1.0, 8);
    h.sample(3.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(StatSet, IncrementAndGet)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    s.set("b", 7);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("b"), 7u);
    EXPECT_EQ(s.get("missing"), 0u);
}

TEST(StatSet, RenderSortedByName)
{
    StatSet s;
    s.set("zeta", 1);
    s.set("alpha", 2);
    const std::string out = s.render();
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
    EXPECT_NE(out.find("alpha = 2"), std::string::npos);
}

TEST(StatSet, ClearDropsAll)
{
    StatSet s;
    s.inc("x");
    s.clear();
    EXPECT_TRUE(s.all().empty());
}
