/**
 * @file
 * Property-style equivalence sweep: over a grid of RNG seeds, beam
 * widths and histogram-pruning caps, the software ViterbiDecoder and
 * the accelerator's functional model must produce identical word
 * sequences and (to float tolerance) identical scores -- the
 * structural invariant accel/accelerator.hh promises ("timing knobs
 * cannot change results", and the expander is decoding-equivalent to
 * the reference decoder).  The same invariant is re-checked through
 * the streaming APIs, frame by frame, and through the server session
 * layer in server_test.cc.
 *
 * The same grid also pins down the arc-layout seam: decoding over
 * wfst::CompactArcs must be bit-identical to the raw walk in exact
 * mode and score-within-bound in quantized mode.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "acoustic/scorer.hh"
#include "common/logging.hh"
#include "decoder/baseline.hh"
#include "decoder/viterbi.hh"
#include "search/backend.hh"
#include "wfst/compact.hh"
#include "wfst/generate.hh"

using namespace asr;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

struct SweepCase
{
    std::uint64_t seed;
    float beam;
    std::uint32_t maxActive;  //!< histogram-pruning cap (0 = off)
};

void
PrintTo(const SweepCase &c, std::ostream *os)
{
    *os << "seed=" << c.seed << " beam=" << c.beam
        << " maxActive=" << c.maxActive;
}

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase>
{
};

wfst::Wfst
netFor(std::uint64_t seed)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 400;
    gcfg.numPhonemes = 32;
    gcfg.numWords = 60;
    // Alternate epsilon topologies so the closure discipline is
    // exercised on cyclic epsilon subgraphs too.
    gcfg.forwardEpsilonOnly = (seed % 2) == 0;
    gcfg.epsilonFraction = (seed % 3) == 0 ? 0.25 : 0.115;
    gcfg.seed = seed;
    return wfst::generateWfst(gcfg);
}

acoustic::AcousticLikelihoods
scoresFor(std::uint64_t seed, std::size_t frames = 18)
{
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 32;
    scfg.seed = seed * 11 + 3;
    return acoustic::SyntheticScorer(scfg).generate(frames);
}

} // namespace

TEST_P(EquivalenceSweep, SoftwareAndAcceleratorAgree)
{
    const SweepCase &c = GetParam();
    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    decoder::DecoderConfig dcfg;
    dcfg.beam = c.beam;
    dcfg.maxActive = c.maxActive;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto r_sw = sw.decode(scores);

    accel::AcceleratorConfig acfg;
    acfg.beam = c.beam;
    acfg.maxActive = c.maxActive;
    accel::Accelerator acc(net, acfg);
    // Functional pass only: timing cannot change results, and the
    // sweep stays fast enough to run densely.
    const auto r_hw = acc.decode(scores, /*run_timing=*/false);

    EXPECT_EQ(r_hw.words, r_sw.words);
    EXPECT_NEAR(r_hw.score, r_sw.score, 1e-3f);
    EXPECT_EQ(r_hw.bestState, r_sw.bestState);
}

TEST_P(EquivalenceSweep, StreamingApisAgreeFrameByFrame)
{
    // The streaming APIs of both engines, fed one frame at a time,
    // must land on the same result as their batch entry points.
    const SweepCase &c = GetParam();
    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed, 12);

    decoder::DecoderConfig dcfg;
    dcfg.beam = c.beam;
    dcfg.maxActive = c.maxActive;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto batch = sw.decode(scores);

    decoder::ViterbiDecoder sw_stream(net, dcfg);
    sw_stream.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f)
        sw_stream.streamFrame(scores.frame(f));
    const auto streamed = sw_stream.streamFinish();
    EXPECT_EQ(streamed.words, batch.words);
    EXPECT_FLOAT_EQ(streamed.score, batch.score);

    accel::AcceleratorConfig acfg;
    acfg.beam = c.beam;
    acfg.maxActive = c.maxActive;
    accel::Accelerator acc(net, acfg);
    acc.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f)
        acc.streamFrame(scores.frame(f), /*run_timing=*/false);
    const auto hw = acc.streamFinish(/*run_timing=*/false);
    EXPECT_EQ(hw.words, batch.words);
    EXPECT_NEAR(hw.score, batch.score, 1e-3f);
}

TEST_P(EquivalenceSweep, RegistryBackendsMatchTheirBareClasses)
{
    // Every registry entry must be *bit-identical* (same float
    // sequence, not merely tolerance-equal) to the pre-refactor
    // class it wraps, across the whole seeds x beams x maxActive
    // grid: the registry adapters add no arithmetic of their own.
    const SweepCase &c = GetParam();
    const wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    decoder::DecoderConfig dcfg;
    dcfg.beam = c.beam;
    dcfg.maxActive = c.maxActive;
    search::BackendConfig bcfg;
    bcfg.decoder = dcfg;

    {
        decoder::ViterbiDecoder bare(net, dcfg);
        const auto want = bare.decode(scores);
        const auto got =
            search::createBackend("viterbi", net, bcfg)
                ->decode(scores);
        EXPECT_EQ(got.words, want.words);
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.bestState, want.bestState);
    }
    {
        decoder::BaselineViterbiDecoder bare(net, dcfg);
        const auto want = bare.decode(scores);
        const auto got =
            search::createBackend("baseline", net, bcfg)
                ->decode(scores);
        EXPECT_EQ(got.words, want.words);
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.bestState, want.bestState);
    }
    {
        // The bare accel under the exact construction recipe the
        // registry uses (withBothOpts minus the bandwidth technique;
        // functional pass only -- timing cannot change results).
        accel::AcceleratorConfig acfg =
            accel::AcceleratorConfig::withBothOpts();
        acfg.bandwidthOptEnabled = false;
        acfg.beam = c.beam;
        acfg.maxActive = c.maxActive;
        accel::Accelerator bare(net, acfg);
        const auto want = bare.decode(scores, /*run_timing=*/false);
        const auto got =
            search::createBackend("accel", net, bcfg)
                ->decode(scores);
        EXPECT_EQ(got.words, want.words);
        EXPECT_EQ(got.score, want.score);
        EXPECT_EQ(got.bestState, want.bestState);
    }
}

TEST_P(EquivalenceSweep, CompactLayoutMatchesRawLayout)
{
    // Arc-layout equivalence across the same grid: with exact
    // weights the compact layout is *bit-identical* to the raw walk
    // (same words, same float score, same expansion counts); with
    // quantized weights the score may drift by at most the dequant
    // error accumulated along the decoded path.
    const SweepCase &c = GetParam();
    wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed);

    decoder::DecoderConfig dcfg;
    dcfg.beam = c.beam;
    dcfg.maxActive = c.maxActive;
    decoder::ViterbiDecoder raw(net, dcfg);
    const auto r_raw = raw.decode(scores);

    decoder::BaselineViterbiDecoder base(net, dcfg);
    const auto r_base = base.decode(scores);
    // Both raw-layout decoders charge the identical per-expansion
    // formula, so their graph-traffic counters must agree exactly.
    EXPECT_EQ(r_base.stats.graphBytesTouched,
              r_raw.stats.graphBytesTouched);
    EXPECT_GT(r_raw.stats.graphBytesTouched, 0u);

    decoder::DecoderConfig ccfg = dcfg;
    ccfg.useCompactArcs = true;

    const auto exact = std::make_shared<const wfst::CompactArcs>(
        wfst::CompactArcs::build(net, wfst::WeightMode::Exact));
    net.attachCompactArcs(exact);
    decoder::ViterbiDecoder cex(net, ccfg);
    const auto r_exact = cex.decode(scores);
    EXPECT_EQ(r_exact.words, r_raw.words);
    EXPECT_EQ(r_exact.score, r_raw.score);
    EXPECT_EQ(r_exact.bestState, r_raw.bestState);
    EXPECT_EQ(r_exact.stats.tokensExpanded,
              r_raw.stats.tokensExpanded);
    EXPECT_GT(r_exact.stats.graphBytesTouched, 0u);

    const auto quant = std::make_shared<const wfst::CompactArcs>(
        wfst::CompactArcs::build(net, wfst::WeightMode::Quantized));
    net.attachCompactArcs(quant);
    decoder::ViterbiDecoder cq(net, ccfg);
    const auto r_quant = cq.decode(scores);
    // Every arc weight moved by <= maxWeightError(); a generous
    // path-length factor bounds the end-to-end score drift without
    // assuming anything about epsilon-chain depth.
    const double bound =
        double(quant->maxWeightError()) *
            (8.0 * double(r_raw.stats.framesDecoded) + 16.0) +
        1e-4;
    EXPECT_NEAR(r_quant.score, r_raw.score, bound);
}

TEST_P(EquivalenceSweep, CompactStreamingAgreesWithBatch)
{
    // The compact layout through the streaming API must equal its
    // own batch entry point frame for frame (exact mode: and the raw
    // batch result too).
    const SweepCase &c = GetParam();
    wfst::Wfst net = netFor(c.seed);
    const auto scores = scoresFor(c.seed, 12);

    net.attachCompactArcs(std::make_shared<const wfst::CompactArcs>(
        wfst::CompactArcs::build(net, wfst::WeightMode::Exact)));
    decoder::DecoderConfig ccfg;
    ccfg.beam = c.beam;
    ccfg.maxActive = c.maxActive;
    ccfg.useCompactArcs = true;

    decoder::ViterbiDecoder batch(net, ccfg);
    const auto want = batch.decode(scores);

    decoder::ViterbiDecoder stream(net, ccfg);
    stream.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f)
        stream.streamFrame(scores.frame(f));
    const auto got = stream.streamFinish();
    EXPECT_EQ(got.words, want.words);
    EXPECT_FLOAT_EQ(got.score, want.score);
    EXPECT_EQ(got.stats.graphBytesTouched,
              want.stats.graphBytesTouched);
}

TEST(CompactLayoutDeath, RequiresAttachedCompactArcs)
{
    // Opting into the compact walk without attaching one is a
    // configuration bug, caught at construction.
    const wfst::Wfst net = netFor(1);
    decoder::DecoderConfig cfg;
    cfg.useCompactArcs = true;
    EXPECT_DEATH(decoder::ViterbiDecoder(net, cfg), "[Cc]ompact");
}

namespace {

std::vector<SweepCase>
sweepGrid()
{
    std::vector<SweepCase> cases;
    const float beams[] = {2.0f, 6.0f, 10.0f, 1e9f};
    const std::uint32_t caps[] = {0, 8, 64};
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        for (const float beam : beams)
            for (const std::uint32_t cap : caps)
                cases.push_back({seed, beam, cap});
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(SeedsBeamsCaps, EquivalenceSweep,
                         ::testing::ValuesIn(sweepGrid()));
