/**
 * @file
 * Unit tests for the always-on front-end pieces in isolation:
 *
 *  - vad::Detector ("energy"): tone vs silence classification,
 *    hangover smoothing, adaptive-floor behaviour.
 *  - The detector registry: custom registration, unknown-name
 *    diagnostics listing the valid choices.
 *  - frontend::Endpointer: sample-exact segment extraction (the
 *    Audio events concatenate to exactly [startSample, endSample) of
 *    the input), preroll/hangover inclusion, chunk-size invariance,
 *    flush semantics.
 *  - frontend::WakeWordGate: the template phrase opens the gate, a
 *    different phrase does not, rearm() closes it again.
 *
 * The corpus-level acceptance sweep (miss/false-trigger rates across
 * seeds and SNRs) and the engine integration live in
 * endpointing_corpus_test.cc.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "frontend/audio.hh"
#include "frontend/endpointer.hh"
#include "frontend/mfcc.hh"
#include "frontend/vad.hh"

using namespace asr;
using namespace asr::frontend;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr std::size_t kFrame = 160;  //!< 10 ms at 16 kHz

/** @p n samples of a 440 Hz tone at amplitude @p amp. */
std::vector<float>
tone(std::size_t n, float amp = 0.5f, std::size_t phase0 = 0)
{
    std::vector<float> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = amp * std::sin(2.0 * 3.14159265358979 * 440.0 *
                              double(i + phase0) / 16000.0);
    return s;
}

/** @p n samples of low-level uniform noise. */
std::vector<float>
noiseFloor(std::size_t n, std::uint64_t seed = 9, float amp = 1e-3f)
{
    Rng rng(seed);
    std::vector<float> s(n);
    for (float &x : s)
        x = float(rng.uniform(-amp, amp));
    return s;
}

} // namespace

// ---------------------------------------------------------------------------
// Frame helpers and the built-in detector.
// ---------------------------------------------------------------------------

TEST(VadHelpers, FrameEnergyAndZeroCrossings)
{
    const std::vector<float> silence(kFrame, 0.0f);
    EXPECT_LE(vad::frameEnergyDb(silence), -99.0f);

    // Full-scale square wave alternating every sample: 0 dBFS mean
    // square and the maximal zero-crossing rate.
    std::vector<float> square(kFrame);
    for (std::size_t i = 0; i < kFrame; ++i)
        square[i] = (i % 2 == 0) ? 1.0f : -1.0f;
    EXPECT_NEAR(vad::frameEnergyDb(square), 0.0f, 1e-4f);
    EXPECT_NEAR(vad::frameZeroCrossRate(square), 1.0f, 1e-6f);

    const std::vector<float> dc(kFrame, 0.25f);
    EXPECT_NEAR(vad::frameZeroCrossRate(dc), 0.0f, 1e-6f);
}

TEST(EnergyDetector, SeparatesToneFromNoiseFloor)
{
    auto det = vad::createDetector("energy", vad::VadConfig());
    ASSERT_NE(det, nullptr);
    EXPECT_EQ(det->name(), "energy");

    // Seed the adaptive floor with quiet frames first.
    const std::vector<float> quiet = noiseFloor(kFrame * 20);
    for (std::size_t f = 0; f < 20; ++f)
        EXPECT_FALSE(det->classify(
            std::span<const float>(quiet.data() + f * kFrame, kFrame)))
            << "noise-floor frame " << f << " classified as speech";

    const std::vector<float> loud = tone(kFrame);
    EXPECT_TRUE(det->classify(loud));
}

TEST(EnergyDetector, HangoverBridgesShortDips)
{
    vad::VadConfig cfg;
    cfg.hangoverFrames = 3;
    auto det = vad::createDetector("energy", cfg);
    const std::vector<float> quiet = noiseFloor(kFrame * 8);
    for (std::size_t f = 0; f < 8; ++f)
        det->classify(
            std::span<const float>(quiet.data() + f * kFrame, kFrame));

    ASSERT_TRUE(det->classify(tone(kFrame)));
    // Silence now: the decision holds for exactly hangoverFrames.
    const std::vector<float> dip = noiseFloor(kFrame, 11);
    for (unsigned f = 0; f < cfg.hangoverFrames; ++f)
        EXPECT_TRUE(det->classify(dip)) << "hangover frame " << f;
    EXPECT_FALSE(det->classify(dip));

    det->reset();
    // After reset the first frame seeds the floor: a lone tone frame
    // cannot clear a floor seeded by itself.
    EXPECT_FALSE(det->classify(tone(kFrame)));
}

TEST(DetectorRegistry, UnknownNameDiagnosticsAndCustomFactories)
{
    EXPECT_TRUE(vad::isDetectorRegistered("energy"));
    EXPECT_FALSE(vad::isDetectorRegistered("no-such-vad"));
    EXPECT_EQ(vad::tryCreateDetector("no-such-vad", vad::VadConfig()),
              nullptr);

    const std::string msg = vad::unknownDetectorMessage("no-such-vad");
    EXPECT_NE(msg.find("no-such-vad"), std::string::npos);
    EXPECT_NE(msg.find("'energy'"), std::string::npos);

    // A custom detector registers and resolves like the built-in.
    class AlwaysSpeech final : public vad::Detector
    {
        std::string_view name() const override { return "always"; }
        bool classify(std::span<const float>) override { return true; }
        void reset() override {}
    };
    vad::registerDetector("always", [](const vad::VadConfig &) {
        return std::unique_ptr<vad::Detector>(new AlwaysSpeech);
    });
    EXPECT_TRUE(vad::isDetectorRegistered("always"));
    auto det = vad::createDetector("always", vad::VadConfig());
    EXPECT_TRUE(det->classify(std::vector<float>(kFrame, 0.0f)));

    const auto names = vad::registeredDetectorNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "energy"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "always"),
              names.end());
}

// ---------------------------------------------------------------------------
// Endpointer.
// ---------------------------------------------------------------------------

namespace {

/** Silence, then a tone burst, then silence -- one clean utterance. */
std::vector<float>
burstSignal(unsigned lead_frames, unsigned burst_frames,
            unsigned tail_frames)
{
    std::vector<float> s;
    const auto quiet =
        noiseFloor(kFrame * (lead_frames + tail_frames), 21);
    s.insert(s.end(), quiet.begin(),
             quiet.begin() + std::ptrdiff_t(lead_frames * kFrame));
    const auto burst = tone(burst_frames * kFrame);
    s.insert(s.end(), burst.begin(), burst.end());
    s.insert(s.end(),
             quiet.begin() + std::ptrdiff_t(lead_frames * kFrame),
             quiet.end());
    return s;
}

/** Drain @p ep completely, appending every event to @p events. */
void
drainInto(Endpointer &ep, std::vector<EndpointEvent> &events)
{
    while (ep.eventReady())
        events.push_back(ep.pop());
}

} // namespace

TEST(Endpointer, SegmentAudioIsSampleExact)
{
    const unsigned lead = 40, burst = 50, tail = 60;
    const std::vector<float> signal = burstSignal(lead, burst, tail);

    EndpointerConfig cfg;
    Endpointer ep(cfg);
    std::vector<EndpointEvent> events;
    for (std::size_t base = 0; base < signal.size(); base += 160) {
        ep.push(std::span<const float>(signal.data() + base, 160));
        drainInto(ep, events);
    }
    ep.flush();
    drainInto(ep, events);

    // Exactly one segment: Start, N Audio frames, End.
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.front().kind, EndpointEvent::Kind::SegmentStart);
    EXPECT_EQ(events.back().kind, EndpointEvent::Kind::SegmentEnd);
    const EndpointEvent &end = events.back();
    EXPECT_EQ(ep.segmentsClosed(), 1u);

    // The segment includes preroll before the onset and the trailing
    // hangover: its span strictly contains the burst.
    const std::uint64_t burst_start = std::uint64_t(lead) * kFrame;
    const std::uint64_t burst_end =
        std::uint64_t(lead + burst) * kFrame;
    EXPECT_LE(end.startSample, burst_start);
    EXPECT_GE(end.endSample, burst_end);
    EXPECT_GE(end.startSample,
              burst_start -
                  (cfg.prerollFrames + cfg.onsetFrames) * kFrame);

    // Sample-exactness: the Audio payloads concatenate to exactly
    // signal[startSample, endSample).
    std::vector<float> forwarded;
    std::uint64_t expect_at = end.startSample;
    for (const EndpointEvent &ev : events) {
        if (ev.kind != EndpointEvent::Kind::Audio)
            continue;
        EXPECT_EQ(ev.firstSample, expect_at);
        expect_at += ev.audio.size();
        forwarded.insert(forwarded.end(), ev.audio.begin(),
                         ev.audio.end());
    }
    ASSERT_EQ(forwarded.size(), end.endSample - end.startSample);
    for (std::size_t i = 0; i < forwarded.size(); ++i)
        ASSERT_EQ(forwarded[i],
                  signal[std::size_t(end.startSample) + i])
            << "forwarded sample " << i << " differs";
}

TEST(Endpointer, EventsAreChunkSizeInvariant)
{
    const std::vector<float> signal = burstSignal(30, 40, 50);
    const auto run = [&](std::size_t chunk) {
        EndpointerConfig cfg;
        Endpointer ep(cfg);
        std::vector<EndpointEvent> events;
        for (std::size_t base = 0; base < signal.size();
             base += chunk) {
            const std::size_t len =
                std::min(chunk, signal.size() - base);
            ep.push(std::span<const float>(signal.data() + base, len));
            drainInto(ep, events);
        }
        ep.flush();
        drainInto(ep, events);
        return events;
    };

    const std::vector<EndpointEvent> ref = run(signal.size());
    for (const std::size_t chunk : {std::size_t(1), std::size_t(7),
                                    std::size_t(160),
                                    std::size_t(4096)}) {
        const std::vector<EndpointEvent> got = run(chunk);
        ASSERT_EQ(got.size(), ref.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(got[i].kind, ref[i].kind);
            EXPECT_EQ(got[i].startSample, ref[i].startSample);
            EXPECT_EQ(got[i].endSample, ref[i].endSample);
            EXPECT_EQ(got[i].firstSample, ref[i].firstSample);
            EXPECT_EQ(got[i].audio, ref[i].audio);
        }
    }
}

TEST(Endpointer, FlushClosesOpenSegmentAndMaxFramesForcesClose)
{
    // A quiet lead-in seeds the adaptive noise floor (a tone from
    // sample 0 would seed the floor with itself and never read as
    // speech), then a tone that never goes silent: only flush() --
    // or the maxSegmentFrames cap -- can close the segment.
    std::vector<float> endless = noiseFloor(kFrame * 10, 41);
    const std::vector<float> burst = tone(kFrame * 50);
    endless.insert(endless.end(), burst.begin(), burst.end());
    {
        EndpointerConfig cfg;
        Endpointer ep(cfg);
        ep.push(endless);
        EXPECT_TRUE(ep.inSpeech());
        EXPECT_EQ(ep.segmentsClosed(), 0u);
        ep.flush();
        EXPECT_EQ(ep.segmentsClosed(), 1u);
        EXPECT_FALSE(ep.inSpeech());
    }
    {
        EndpointerConfig cfg;
        cfg.maxSegmentFrames = 20;
        Endpointer ep(cfg);
        ep.push(endless);
        // 50 speech frames with a 20-frame cap: at least two forced
        // closes happened before flush.
        EXPECT_GE(ep.segmentsClosed(), 2u);
    }
}

TEST(Endpointer, NoSpeechYieldsNoEvents)
{
    EndpointerConfig cfg;
    Endpointer ep(cfg);
    ep.push(noiseFloor(kFrame * 100, 33));
    ep.flush();
    EXPECT_FALSE(ep.eventReady());
    EXPECT_EQ(ep.segmentsClosed(), 0u);
}

// ---------------------------------------------------------------------------
// Wake-word gate.
// ---------------------------------------------------------------------------

TEST(WakeWordGate, OpensOnTemplateRejectsOtherPhrase)
{
    const Mfcc mfcc;
    const Synthesizer synth(8, 16000, 77);
    const AudioSignal wake = synth.synthesize({1, 3, 5}, 8);
    const AudioSignal other = synth.synthesize({2, 6, 4}, 8);

    WakeWordGate gate(mfcc, wake.samples, 0.8f);
    EXPECT_FALSE(gate.isOpen());
    EXPECT_GT(gate.templateFrames(), 0u);

    // A different phrase of the same length must not trigger.
    EXPECT_EQ(gate.push(other.samples), other.samples.size());
    EXPECT_FALSE(gate.isOpen()) << "best " << gate.bestScore();

    // The wake phrase itself triggers; the returned live index never
    // exceeds the chunk and the gate forwards everything afterwards.
    const std::size_t live = gate.push(wake.samples);
    EXPECT_TRUE(gate.isOpen()) << "best " << gate.bestScore();
    EXPECT_LE(live, wake.samples.size());
    EXPECT_EQ(gate.push(other.samples), 0u);

    gate.rearm();
    EXPECT_FALSE(gate.isOpen());
    EXPECT_EQ(gate.push(other.samples), other.samples.size());
}
