/**
 * @file
 * Tests for the concurrent streaming decode engine (src/server):
 * streaming sessions must reproduce the batch pipeline bit-exactly,
 * handle degenerate inputs (zero-length audio, single frames, beams
 * so tight everything but the best chain is cut), agree across the
 * software and accelerator backends, and produce scheduling-
 * independent results under any worker-thread count.
 *
 * The shared AsrModel is trained once per process (SetUpTestSuite):
 * DNN training is the expensive part and the model is immutable, so
 * every test decodes against the same instance -- exactly the usage
 * pattern the server layer is designed for.
 */

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pipeline/asr_system.hh"
#include "pipeline/corpus.hh"
#include "server/scheduler.hh"
#include "server/session.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::server;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

/** Shared net + trained model for the whole suite. */
class ServerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2025;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));

        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 31;
        model = new pipeline::AsrModel(*net, mcfg);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    /** Synthesize a deterministic test utterance. */
    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *ServerTest::net = nullptr;
pipeline::AsrModel *ServerTest::model = nullptr;

/** Decode one signal through a session in chunks of @p chunk. */
pipeline::RecognitionResult
decodeChunked(const pipeline::AsrModel &model, const SessionConfig &cfg,
              const frontend::AudioSignal &audio, std::size_t chunk)
{
    StreamingSession session(model, cfg);
    const auto &s = audio.samples;
    for (std::size_t base = 0; base < s.size(); base += chunk) {
        const std::size_t len = std::min(chunk, s.size() - base);
        session.pushAudio(std::span<const float>(s.data() + base, len));
    }
    return session.finish();
}

} // namespace

TEST_F(ServerTest, StreamingMatchesBatchPipelineExactly)
{
    // The streaming session (incremental MFCC, lagged per-frame DNN
    // scoring, frame-synchronous search) must be bit-identical to
    // the batch facade over the same model.
    const frontend::AudioSignal audio = testAudio(7);

    const frontend::FeatureMatrix feats =
        model->mfcc().compute(audio);
    const acoustic::AcousticLikelihoods scores =
        model->scorer().score(feats);
    decoder::DecoderConfig dcfg;
    dcfg.beam = model->config().beam;
    decoder::ViterbiDecoder batch(model->net(), dcfg);
    const auto batch_result = batch.decode(scores);

    for (const std::size_t chunk :
         {std::size_t(1), std::size_t(160), std::size_t(997),
          std::size_t(1) << 20}) {
        SessionConfig scfg;
        const auto r = decodeChunked(*model, scfg, audio, chunk);
        EXPECT_EQ(r.words, batch_result.words) << "chunk " << chunk;
        EXPECT_FLOAT_EQ(r.score, batch_result.score)
            << "chunk " << chunk;
    }
}

TEST_F(ServerTest, BackendsAgreeUnderSessionApi)
{
    const frontend::AudioSignal audio = testAudio(11);

    SessionConfig sw;
    sw.useAccelerator = false;
    const auto r_sw = decodeChunked(*model, sw, audio, 160);

    SessionConfig hw;
    hw.useAccelerator = true;
    const auto r_hw = decodeChunked(*model, hw, audio, 160);

    EXPECT_EQ(r_hw.words, r_sw.words);
    EXPECT_NEAR(r_hw.score, r_sw.score, 1e-3f);
    EXPECT_GT(r_hw.accelStats.frames, 0u);
}

TEST_F(ServerTest, ZeroLengthAudio)
{
    SessionConfig scfg;
    StreamingSession session(*model, scfg);
    session.pushAudio({});
    EXPECT_TRUE(session.partialWords().empty());
    const auto r = session.finish();
    EXPECT_TRUE(r.words.empty());
    EXPECT_EQ(session.framesDecoded(), 0u);
    EXPECT_EQ(r.audioSeconds, 0.0);
}

TEST_F(ServerTest, AudioShorterThanOneWindowYieldsNoFrames)
{
    // 399 samples at 16 kHz is one sample short of a 25 ms window.
    SessionConfig scfg;
    StreamingSession session(*model, scfg);
    std::vector<float> samples(399, 0.01f);
    session.pushAudio(samples);
    const auto r = session.finish();
    EXPECT_EQ(session.framesDecoded(), 0u);
    EXPECT_TRUE(r.words.empty());
}

TEST_F(ServerTest, SingleFrameUtterance)
{
    // Exactly one analysis window -> one decoded frame, and the
    // result matches the batch path on the same audio.
    const frontend::AudioSignal full = testAudio(13);
    frontend::AudioSignal audio;
    audio.sampleRate = full.sampleRate;
    audio.samples.assign(full.samples.begin(),
                         full.samples.begin() + 400);

    SessionConfig scfg;
    const auto r = decodeChunked(*model, scfg, audio, 64);

    const frontend::FeatureMatrix feats =
        model->mfcc().compute(audio);
    ASSERT_EQ(feats.size(), 1u);
    const auto scores = model->scorer().score(feats);
    decoder::DecoderConfig dcfg;
    dcfg.beam = model->config().beam;
    decoder::ViterbiDecoder batch(model->net(), dcfg);
    const auto batch_result = batch.decode(scores);

    EXPECT_EQ(r.words, batch_result.words);
    EXPECT_FLOAT_EQ(r.score, batch_result.score);
}

TEST_F(ServerTest, UltraTightBeamPrunesEverythingGracefully)
{
    // A beam this tight prunes everything but the frame-best token;
    // when that chain hits a dead end the whole search dies.  The
    // session must finish cleanly (empty hypothesis, log-zero score)
    // and both backends must agree on the outcome.
    const frontend::AudioSignal audio = testAudio(17);

    SessionConfig sw;
    sw.beam = 1e-4f;
    const auto r_sw = decodeChunked(*model, sw, audio, 160);

    SessionConfig hw = sw;
    hw.useAccelerator = true;
    const auto r_hw = decodeChunked(*model, hw, audio, 160);

    EXPECT_EQ(r_hw.words, r_sw.words);
    if (r_sw.score > wfst::kLogZero) {
        EXPECT_NEAR(r_hw.score, r_sw.score, 1e-3f);
    } else {
        // Search died: both backends must report it the same way.
        EXPECT_TRUE(r_sw.words.empty());
        EXPECT_LE(r_hw.score, wfst::kLogZero);
    }

    // A merely tight beam keeps the best chain alive; the backends
    // must still agree and actually prune.
    SessionConfig tight;
    tight.beam = 2.0f;
    const auto t_sw = decodeChunked(*model, tight, audio, 160);
    tight.useAccelerator = true;
    const auto t_hw = decodeChunked(*model, tight, audio, 160);
    EXPECT_GT(t_sw.score, wfst::kLogZero);
    EXPECT_EQ(t_hw.words, t_sw.words);
    EXPECT_NEAR(t_hw.score, t_sw.score, 1e-3f);
}

TEST_F(ServerTest, PartialHypothesesAreMonotonicallyUsable)
{
    const frontend::AudioSignal audio = testAudio(19, 8);
    SessionConfig scfg;
    StreamingSession session(*model, scfg);

    const auto &s = audio.samples;
    std::size_t partials_seen = 0;
    for (std::size_t base = 0; base < s.size(); base += 640) {
        const std::size_t len = std::min<std::size_t>(640, s.size() - base);
        session.pushAudio(std::span<const float>(s.data() + base, len));
        partials_seen += session.partialWords().empty() ? 0 : 1;
    }
    const auto r = session.finish();
    EXPECT_GT(session.framesDecoded(), 0u);
    // The utterance produces words, and at least one partial was
    // already visible mid-stream.
    if (!r.words.empty()) {
        EXPECT_GT(partials_seen, 0u);
    }
}

TEST_F(ServerTest, ConcurrentBitIdenticalToSequential)
{
    // The same submissions through 1 worker and 4 workers (and a
    // plain sequential session loop) must produce bit-identical
    // per-utterance words and scores: shared state is immutable and
    // per-session RNG streams make results scheduling-independent.
    constexpr unsigned kUtterances = 6;
    std::vector<frontend::AudioSignal> corpus;
    for (unsigned u = 0; u < kUtterances; ++u)
        corpus.push_back(testAudio(100 + u));

    // Sequential reference via bare sessions.
    std::vector<pipeline::RecognitionResult> seq;
    for (unsigned u = 0; u < kUtterances; ++u) {
        SessionConfig scfg;
        scfg.id = u;
        scfg.baseSeed = 9;
        scfg.ditherAmplitude = 1e-4f;
        seq.push_back(decodeChunked(*model, scfg, corpus[u], 160));
    }

    for (const unsigned threads : {1u, 4u}) {
        SchedulerConfig cfg;
        cfg.numThreads = threads;
        cfg.baseSeed = 9;
        cfg.ditherAmplitude = 1e-4f;
        DecodeScheduler engine(*model, cfg);

        std::vector<std::future<pipeline::RecognitionResult>> futures;
        for (unsigned u = 0; u < kUtterances; ++u)
            futures.push_back(engine.submit(corpus[u]));

        for (unsigned u = 0; u < kUtterances; ++u) {
            const auto r = futures[u].get();
            EXPECT_EQ(r.sessionId, u);
            EXPECT_EQ(r.words, seq[u].words)
                << "threads " << threads << " utterance " << u;
            EXPECT_FLOAT_EQ(r.score, seq[u].score)
                << "threads " << threads << " utterance " << u;
        }

        const auto snap = engine.stats();
        EXPECT_EQ(snap.utterances, kUtterances);
        EXPECT_GT(snap.audioSeconds, 0.0);
        EXPECT_GT(snap.utterancesPerSecond(), 0.0);
        EXPECT_GE(snap.latencyP99Ms, snap.latencyP50Ms);
    }
}

TEST_F(ServerTest, DitherSeedingIsPerSessionNotShared)
{
    // Same base seed -> identical stream per session id; a different
    // base seed changes the derived streams.  (With a shared RNG the
    // result would depend on scheduling; deriveSeed makes it a pure
    // function of (base, id).)
    const frontend::AudioSignal audio = testAudio(23);

    SessionConfig a;
    a.id = 3;
    a.baseSeed = 42;
    a.ditherAmplitude = 1e-3f;
    const auto r1 = decodeChunked(*model, a, audio, 160);
    const auto r2 = decodeChunked(*model, a, audio, 160);
    EXPECT_EQ(r1.words, r2.words);
    EXPECT_FLOAT_EQ(r1.score, r2.score);

    EXPECT_NE(deriveSeed(42, 3), deriveSeed(43, 3));
    EXPECT_NE(deriveSeed(42, 3), deriveSeed(42, 4));
}

TEST_F(ServerTest, SchedulerDrainAndReuse)
{
    SchedulerConfig cfg;
    cfg.numThreads = 2;
    DecodeScheduler engine(*model, cfg);

    auto f1 = engine.submit(testAudio(31));
    engine.drain();
    EXPECT_EQ(engine.stats().utterances, 1u);

    auto f2 = engine.submit(testAudio(32));
    auto f3 = engine.submit(testAudio(33));
    engine.drain();
    EXPECT_EQ(engine.stats().utterances, 3u);
    EXPECT_EQ(engine.submittedCount(), 3u);

    // Futures stay valid after drain.
    EXPECT_GT(f1.get().audioSeconds, 0.0);
    EXPECT_GT(f2.get().audioSeconds, 0.0);
    EXPECT_GT(f3.get().audioSeconds, 0.0);
}

TEST_F(ServerTest, EngineStatsSnapshotArithmetic)
{
    EngineStats stats;
    stats.recordUtterance(2.0, 0.5, 0.6);
    stats.recordUtterance(1.0, 0.5, 0.1);
    const auto snap = stats.snapshot(4.0);
    EXPECT_EQ(snap.utterances, 2u);
    EXPECT_NEAR(snap.audioSeconds, 3.0, 1e-9);
    EXPECT_NEAR(snap.decodeSeconds, 1.0, 1e-9);
    EXPECT_NEAR(snap.aggregateRtf(), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(snap.utterancesPerSecond(), 0.5, 1e-9);
    EXPECT_GE(snap.latencyMaxMs, 599.0);
    const auto set = snap.toStatSet();
    EXPECT_EQ(set.get("engine.utterances"), 2u);
    EXPECT_FALSE(snap.render().empty());
}

TEST_F(ServerTest, EngineStatsSearchSplitAndArenaTelemetry)
{
    EngineStats stats;
    UtteranceSample s1;
    s1.audioSeconds = 2.0;
    s1.decodeSeconds = 1.0;
    s1.latencySeconds = 1.1;
    s1.searchSeconds = 0.75;
    s1.dnnSeconds = 0.25;
    s1.arenaPeakEntries = 5000;
    s1.arenaGcRuns = 3;
    s1.bpAppendsSkipped = 42;
    stats.recordUtterance(s1);
    UtteranceSample s2 = s1;
    s2.arenaPeakEntries = 2000;  // smaller peak: max, not sum
    stats.recordUtterance(s2);

    const auto snap = stats.snapshot(4.0);
    EXPECT_NEAR(snap.searchSeconds, 1.5, 1e-9);
    EXPECT_NEAR(snap.dnnSeconds, 0.5, 1e-9);
    EXPECT_NEAR(snap.searchShare(), 0.75, 1e-9);
    EXPECT_EQ(snap.arenaPeakEntries, 5000u);
    EXPECT_EQ(snap.arenaGcRuns, 6u);
    EXPECT_EQ(snap.bpAppendsSkipped, 84u);
    const auto set = snap.toStatSet();
    EXPECT_EQ(set.get("engine.arena_peak_entries"), 5000u);
    EXPECT_NE(snap.render().find("decode split"), std::string::npos);

    stats.clear();
    const auto zero = stats.snapshot();
    EXPECT_EQ(zero.arenaPeakEntries, 0u);
    EXPECT_NEAR(zero.searchShare(), 0.0, 1e-12);
}

TEST_F(ServerTest, ArenaGcWatermarkFlowsThroughSchedulerUnchanged)
{
    // A scheduler with the GC watermark enabled must produce results
    // bit-identical to one without, and the arena telemetry must
    // reach the engine snapshot.
    const frontend::AudioSignal audio = testAudio(57);

    SchedulerConfig plain;
    plain.numThreads = 2;
    DecodeScheduler ref(*model, plain);
    const auto expected = ref.submit(audio).get();

    SchedulerConfig gc = plain;
    gc.arenaGcWatermark = 256;  // tiny: collect constantly
    DecodeScheduler engine(*model, gc);
    const auto r = engine.submit(audio).get();
    engine.drain();

    EXPECT_EQ(r.words, expected.words);
    EXPECT_FLOAT_EQ(r.score, expected.score);

    const auto snap = engine.stats();
    EXPECT_GT(snap.searchSeconds, 0.0);
    EXPECT_GT(snap.dnnSeconds, 0.0);
    EXPECT_GT(snap.arenaPeakEntries, 0u);
    EXPECT_GT(r.searchStats.arenaGcRuns, 0u);
    EXPECT_EQ(snap.arenaPeakEntries,
              r.searchStats.arenaPeakEntries);
}
