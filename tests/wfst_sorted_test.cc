/**
 * @file
 * Tests for the Sec. IV-B sorted layout: the comparator/offset-table
 * arithmetic, the state permutation, and coverage statistics.
 */

#include <gtest/gtest.h>

#include "wfst/generate.hh"
#include "wfst/sorted.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

Wfst
makeNet(StateId states, std::uint64_t seed)
{
    GeneratorConfig cfg;
    cfg.numStates = states;
    cfg.seed = seed;
    return generateWfst(cfg);
}

} // namespace

TEST(SortedWfst, PermutationIsBijective)
{
    const Wfst net = makeNet(5000, 3);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    std::vector<bool> seen(net.numStates(), false);
    for (StateId s = 0; s < net.numStates(); ++s) {
        const StateId old_id = sorted.newToOld(s);
        ASSERT_LT(old_id, net.numStates());
        ASSERT_FALSE(seen[old_id]);
        seen[old_id] = true;
        ASSERT_EQ(sorted.oldToNew(old_id), s);
    }
}

TEST(SortedWfst, DegreesSortedInDirectRegion)
{
    const Wfst net = makeNet(5000, 5);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    const auto &bounds = sorted.boundaries();
    ASSERT_EQ(bounds.size(), 16u);
    StateId lo = 0;
    for (unsigned k = 1; k <= 16; ++k) {
        for (StateId s = lo; s < bounds[k - 1]; ++s)
            ASSERT_EQ(sorted.wfst().state(s).numArcs(), k);
        lo = bounds[k - 1];
    }
    // Boundaries are monotonically non-decreasing.
    for (unsigned k = 1; k < 16; ++k)
        ASSERT_LE(bounds[k - 1], bounds[k]);
}

TEST(SortedWfst, LookupMatchesStateArray)
{
    // The comparator network must agree with the actual state
    // entries for every state, direct or not.
    const Wfst net = makeNet(8000, 7);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    const Wfst &w = sorted.wfst();
    for (StateId s = 0; s < w.numStates(); ++s) {
        const auto direct = sorted.lookup(s);
        const StateEntry &e = w.state(s);
        if (direct.direct) {
            ASSERT_EQ(direct.numArcs, e.numArcs()) << "state " << s;
            ASSERT_EQ(direct.firstArc, e.firstArc) << "state " << s;
            ASSERT_LE(e.numArcs(), 16u);
        } else {
            // Outside the direct region: degree 0 or > N.
            ASSERT_TRUE(e.numArcs() == 0 || e.numArcs() > 16)
                << "state " << s;
        }
    }
}

TEST(SortedWfst, ArcContentPreservedModuloRelabeling)
{
    const Wfst net = makeNet(3000, 11);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    const Wfst &w = sorted.wfst();
    for (StateId old_id = 0; old_id < net.numStates(); ++old_id) {
        const StateId new_id = sorted.oldToNew(old_id);
        const auto old_arcs = net.arcs(old_id);
        const auto new_arcs = w.arcs(new_id);
        ASSERT_EQ(old_arcs.size(), new_arcs.size());
        for (std::size_t i = 0; i < old_arcs.size(); ++i) {
            ASSERT_EQ(sorted.oldToNew(old_arcs[i].dest),
                      new_arcs[i].dest);
            ASSERT_EQ(old_arcs[i].weight, new_arcs[i].weight);
            ASSERT_EQ(old_arcs[i].ilabel, new_arcs[i].ilabel);
            ASSERT_EQ(old_arcs[i].olabel, new_arcs[i].olabel);
        }
    }
}

TEST(SortedWfst, FinalWeightsFollowPermutation)
{
    GeneratorConfig cfg;
    cfg.numStates = 2000;
    cfg.finalStateProb = 0.3;
    cfg.seed = 13;
    const Wfst net = generateWfst(cfg);
    ASSERT_TRUE(net.hasFinalStates());
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    for (StateId old_id = 0; old_id < net.numStates(); ++old_id)
        ASSERT_EQ(net.finalWeight(old_id),
                  sorted.wfst().finalWeight(sorted.oldToNew(old_id)));
}

TEST(SortedWfst, InitialStateRemapped)
{
    const Wfst net = makeNet(2000, 17);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    EXPECT_EQ(sorted.wfst().initialState(),
              sorted.oldToNew(net.initialState()));
}

TEST(SortedWfst, CoverageMatchesPaperAtN16)
{
    // Sec. IV-B: with N = 16 more than 95% of the static states are
    // directly addressable.
    const Wfst net = makeNet(100000, 19);
    const SortedWfst sorted = sortWfstByDegree(net, 16);
    EXPECT_GT(sorted.directStateFraction(), 0.95);
}

/** Coverage grows monotonically with N. */
class SortedCoverage : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SortedCoverage, LookupConsistentForAnyN)
{
    const unsigned n = GetParam();
    const Wfst net = makeNet(5000, 23);
    const SortedWfst sorted = sortWfstByDegree(net, n);
    EXPECT_EQ(sorted.n(), n);
    const Wfst &w = sorted.wfst();
    w.validate();
    for (StateId s = 0; s < w.numStates(); ++s) {
        const auto direct = sorted.lookup(s);
        if (direct.direct) {
            ASSERT_EQ(direct.firstArc, w.state(s).firstArc);
            ASSERT_EQ(direct.numArcs, w.state(s).numArcs());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ns, SortedCoverage,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(SortedWfst, CoverageMonotonicInN)
{
    const Wfst net = makeNet(20000, 29);
    double prev = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const double cov =
            sortWfstByDegree(net, n).directStateFraction();
        EXPECT_GE(cov, prev);
        prev = cov;
    }
    EXPECT_GT(prev, 0.95);
}
