/**
 * @file
 * Tests for the cycle-accurate timing behaviour of the accelerator:
 * the paper's qualitative claims must hold on scaled-down workloads
 * (prefetching helps, perfect caches help, the bandwidth technique
 * cuts state traffic, stalls are attributed sensibly).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/report.hh"
#include "acoustic/scorer.hh"
#include "wfst/generate.hh"
#include "wfst/sorted.hh"

using namespace asr;
using namespace asr::accel;

namespace {

struct Fixture
{
    wfst::Wfst net;
    wfst::SortedWfst sorted;
    acoustic::AcousticLikelihoods scores;

    /** A mid-sized workload that actually exercises the caches. */
    static Fixture &
    instance()
    {
        static Fixture f = [] {
            Fixture fx;
            wfst::GeneratorConfig gcfg;
            gcfg.numStates = 60000;
            gcfg.numPhonemes = 256;
            gcfg.seed = 2016;
            fx.net = wfst::generateWfst(gcfg);
            fx.sorted = wfst::sortWfstByDegree(fx.net, 16);
            acoustic::SyntheticScorerConfig scfg;
            scfg.numPhonemes = 256;
            scfg.seed = 99;
            fx.scores = acoustic::SyntheticScorer(scfg).generate(40);
            return fx;
        }();
        return f;
    }
};

AcceleratorConfig
testConfig(AcceleratorConfig base = AcceleratorConfig::baseline())
{
    base.beam = 6.0f;
    base.maxActive = 2000;
    // Scale the caches down with the workload so misses occur.
    base.stateCache.size = 32_KiB;
    base.arcCache.size = 64_KiB;
    base.tokenCache.size = 32_KiB;
    base.hashEntries = 4096;
    base.hashBackupEntries = 2048;
    return base;
}

AccelStats
run(const AcceleratorConfig &cfg)
{
    Fixture &f = Fixture::instance();
    if (cfg.bandwidthOptEnabled) {
        Accelerator acc(f.sorted, cfg);
        acc.decode(f.scores);
        return acc.stats();
    }
    Accelerator acc(f.net, cfg);
    acc.decode(f.scores);
    return acc.stats();
}

} // namespace

TEST(AccelTiming, ProducesNonTrivialCycles)
{
    const AccelStats s = run(testConfig());
    EXPECT_GT(s.cycles, 1000u);
    EXPECT_EQ(s.frames, 40u);
    EXPECT_GT(s.arcsFetched, s.frames);
    EXPECT_GT(s.tokensRead, 0u);
    EXPECT_GT(s.dram.totalBytes(), 0u);
    EXPECT_GT(s.decodeTimePerSecondOfSpeech(600e6), 0.0);
}

TEST(AccelTiming, PrefetchingImprovesPerformance)
{
    // Sec. IV-A headline: the decoupled prefetcher provides a large
    // speedup over the base design (1.87x in the paper).
    const AccelStats base = run(testConfig());
    AcceleratorConfig pf_cfg =
        testConfig(AcceleratorConfig::withArcOpt());
    const AccelStats pf = run(pf_cfg);

    EXPECT_LT(pf.cycles, base.cycles);
    const double speedup = double(base.cycles) / double(pf.cycles);
    EXPECT_GT(speedup, 1.2);
    // Prefetching must not change the work done or the traffic.
    EXPECT_EQ(pf.arcsFetched, base.arcsFetched);
    EXPECT_EQ(pf.tokensWritten, base.tokensWritten);
}

TEST(AccelTiming, PerfectCachesImprovePerformance)
{
    const AccelStats base = run(testConfig());
    AcceleratorConfig perfect = testConfig();
    perfect.makeCachesPerfect();
    const AccelStats p = run(perfect);
    EXPECT_LT(p.cycles, base.cycles);
    EXPECT_EQ(p.stateCache.misses, 0u);
    EXPECT_EQ(p.arcCache.misses, 0u);
    EXPECT_EQ(p.tokenCache.misses, 0u);
    // Perfect caches leave only hash/acoustic/DMA traffic.
    EXPECT_LT(p.dram.totalBytes(), base.dram.totalBytes());
}

TEST(AccelTiming, PrefetchApproachesPerfectArcCache)
{
    // Sec. VI: the prefetching architecture reaches ~97% of a
    // perfect Arc cache.  At test scale we check it closes most of
    // the arc-miss gap.
    AcceleratorConfig perfect_arc = testConfig();
    perfect_arc.arcCache.perfect = true;
    const AccelStats pa = run(perfect_arc);
    const AccelStats pf =
        run(testConfig(AcceleratorConfig::withArcOpt()));
    const AccelStats base = run(testConfig());

    const double gap_closed =
        double(base.cycles - pf.cycles) /
        double(base.cycles - pa.cycles);
    EXPECT_GT(gap_closed, 0.6);
}

TEST(AccelTiming, BandwidthTechniqueCutsStateTraffic)
{
    // Sec. IV-B headline: most off-chip state fetches disappear.
    const AccelStats base = run(testConfig());
    const AccelStats opt =
        run(testConfig(AcceleratorConfig::withStateOpt()));

    const auto base_state =
        base.dram.bytesForClass(sim::DataClass::State);
    const auto opt_state =
        opt.dram.bytesForClass(sim::DataClass::State);
    EXPECT_LT(opt_state, base_state / 4);
    EXPECT_LT(opt.dram.totalBytes(), base.dram.totalBytes());

    // >95% of dynamic state resolutions are direct (Sec. IV-B).
    const double direct_fraction =
        double(opt.directStates) /
        double(opt.directStates + opt.stateFetches);
    EXPECT_GT(direct_fraction, 0.9);
    EXPECT_EQ(base.directStates, 0u);
}

TEST(AccelTiming, IdealHashRemovesCollisionCycles)
{
    AcceleratorConfig tiny_hash = testConfig();
    tiny_hash.hashEntries = 256;
    tiny_hash.hashBackupEntries = 2048;
    const AccelStats collide = run(tiny_hash);

    AcceleratorConfig ideal = tiny_hash;
    ideal.idealHash = true;
    const AccelStats smooth = run(ideal);

    EXPECT_GT(collide.hash.avgCyclesPerRequest(), 1.05);
    EXPECT_DOUBLE_EQ(smooth.hash.avgCyclesPerRequest(), 1.0);
    EXPECT_LE(smooth.cycles, collide.cycles);
}

TEST(AccelTiming, HashSizeSweepImprovesCyclesPerRequest)
{
    // The Figure-5 property: more entries, fewer collision cycles,
    // approaching one cycle per request.
    double prev = 1e9;
    for (unsigned entries : {512u, 2048u, 8192u}) {
        AcceleratorConfig cfg = testConfig();
        cfg.hashEntries = entries;
        cfg.hashBackupEntries = entries / 2;
        const AccelStats s = run(cfg);
        EXPECT_LE(s.hash.avgCyclesPerRequest(), prev + 1e-9);
        prev = s.hash.avgCyclesPerRequest();
    }
    EXPECT_LT(prev, 1.35);
}

TEST(AccelTiming, CacheCapacitySweepReducesMissRatio)
{
    // The Figure-4 property on the arc cache.
    double prev = 1.1;
    for (Bytes size : {16_KiB, 64_KiB, 256_KiB}) {
        AcceleratorConfig cfg = testConfig();
        cfg.arcCache.size = size;
        const AccelStats s = run(cfg);
        EXPECT_LT(s.arcCache.missRatio(), prev);
        prev = s.arcCache.missRatio();
    }
}

TEST(AccelTiming, TrafficBreakdownCoversAllClasses)
{
    const AccelStats s = run(testConfig());
    EXPECT_GT(s.dram.bytesForClass(sim::DataClass::State), 0u);
    EXPECT_GT(s.dram.bytesForClass(sim::DataClass::Arc), 0u);
    EXPECT_GT(s.dram.bytesForClass(sim::DataClass::Token), 0u);
    EXPECT_GT(s.dram.bytesForClass(sim::DataClass::Acoustic), 0u);
}

TEST(AccelTiming, StallAttributionShiftsWithPrefetch)
{
    const AccelStats base = run(testConfig());
    const AccelStats pf =
        run(testConfig(AcceleratorConfig::withArcOpt()));
    // Arc-data stalls must shrink dramatically with prefetching.
    EXPECT_LT(double(pf.stallArcData) / double(pf.cycles),
              double(base.stallArcData) / double(base.cycles));
}

TEST(AccelTiming, DmaBytesMatchScores)
{
    Fixture &f = Fixture::instance();
    AcceleratorConfig cfg = testConfig();
    Accelerator acc(f.net, cfg);
    acc.decode(f.scores);
    const auto dma = acc.stats().dram.bytesForClass(
        sim::DataClass::Acoustic);
    EXPECT_EQ(dma, f.scores.frameBytes() * f.scores.numFrames());
}

TEST(AccelTiming, FunctionalOnlyModeSkipsCycles)
{
    Fixture &f = Fixture::instance();
    Accelerator acc(f.net, testConfig());
    acc.decode(f.scores, /*run_timing=*/false);
    EXPECT_EQ(acc.stats().cycles, 0u);
    EXPECT_GT(acc.stats().tokensRead, 0u);
}

TEST(AccelTiming, ColdVsWarmCaches)
{
    Fixture &f = Fixture::instance();
    Accelerator acc(f.net, testConfig());
    acc.decode(f.scores);
    const auto cold_misses = acc.stats().arcCache.misses;

    // Second utterance over the same net: warm caches miss less.
    acc.clearStats();
    acc.decode(f.scores);
    const auto warm_misses = acc.stats().arcCache.misses;
    EXPECT_LT(warm_misses, cold_misses);

    // Invalidation restores cold behaviour.
    acc.clearStats();
    acc.invalidateCaches();
    acc.decode(f.scores);
    EXPECT_EQ(acc.stats().arcCache.misses, cold_misses);
}

TEST(AccelTiming, DeeperPrefetchFifoHelps)
{
    AcceleratorConfig shallow =
        testConfig(AcceleratorConfig::withArcOpt());
    shallow.prefetchFifoDepth = 12;
    AcceleratorConfig deep = shallow;
    deep.prefetchFifoDepth = 64;
    const AccelStats s_shallow = run(shallow);
    const AccelStats s_deep = run(deep);
    EXPECT_LE(s_deep.cycles, s_shallow.cycles);
}

TEST(AccelReport, RendersAllSections)
{
    const AccelStats s = run(testConfig());
    const std::string report =
        accel::renderStatsReport(s, testConfig());
    for (const char *needle :
         {"workload:", "performance:", "memory system:",
          "off-chip traffic:", "arc cache", "hash avg cycles",
          "cycles / frame", "stall: arc data"})
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
}
