/**
 * @file
 * Tests for the WFST container, its packed layout, the builder and
 * the Figure-2 example.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "wfst/examples.hh"
#include "wfst/symbols.hh"
#include "wfst/wfst.hh"

using namespace asr;
using namespace asr::wfst;

TEST(WfstLayout, PackedSizesMatchThePaper)
{
    // Sec. III: 64-bit state entries, 128-bit arc entries.
    EXPECT_EQ(sizeof(StateEntry), 8u);
    EXPECT_EQ(sizeof(ArcEntry), 16u);
}

TEST(WfstBuilder, NonEpsilonFirstLayout)
{
    WfstBuilder b(3);
    // Insert out of order: epsilon first.
    b.addArc(0, 1, -0.5f, kEpsilonLabel);
    b.addArc(0, 2, -0.2f, 3);
    b.addArc(0, 1, -0.3f, 4, 7);
    const Wfst w = b.build();

    const StateEntry &e = w.state(0);
    EXPECT_EQ(e.numNonEpsArcs, 2u);
    EXPECT_EQ(e.numEpsArcs, 1u);
    EXPECT_EQ(e.numArcs(), 3u);

    // Relative order within each class follows insertion order.
    const auto non_eps = w.nonEpsArcs(0);
    EXPECT_EQ(non_eps[0].ilabel, 3u);
    EXPECT_EQ(non_eps[1].ilabel, 4u);
    EXPECT_EQ(non_eps[1].olabel, 7u);
    const auto eps = w.epsArcs(0);
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_TRUE(eps[0].isEpsilon());
    EXPECT_EQ(eps[0].dest, 1u);
}

TEST(WfstBuilder, EmptyStatesAreValid)
{
    WfstBuilder b(4);
    b.addArc(0, 3, -1.0f, 1);
    const Wfst w = b.build();
    EXPECT_EQ(w.numStates(), 4u);
    EXPECT_EQ(w.numArcs(), 1u);
    EXPECT_EQ(w.state(1).numArcs(), 0u);
    EXPECT_TRUE(w.arcs(2).empty());
}

TEST(WfstBuilder, AddStateGrows)
{
    WfstBuilder b(1);
    const StateId s = b.addState();
    EXPECT_EQ(s, 1u);
    b.addArc(0, s, -0.1f, 2);
    const Wfst w = b.build();
    EXPECT_EQ(w.numStates(), 2u);
    EXPECT_EQ(w.arcs(0)[0].dest, s);
}

TEST(WfstBuilder, FinalWeights)
{
    WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1);
    b.setFinal(1, -0.25f);
    const Wfst w = b.build();
    EXPECT_TRUE(w.hasFinalStates());
    EXPECT_FLOAT_EQ(w.finalWeight(1), -0.25f);
    EXPECT_LE(w.finalWeight(0), kLogZero);
}

TEST(WfstBuilder, NoFinalsMeansEmptyFinalArray)
{
    WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1);
    const Wfst w = b.build();
    EXPECT_FALSE(w.hasFinalStates());
    EXPECT_LE(w.finalWeight(0), kLogZero);
}

TEST(WfstBuilder, InitialState)
{
    WfstBuilder b(3);
    b.addArc(2, 0, -0.1f, 1);
    b.setInitial(2);
    const Wfst w = b.build();
    EXPECT_EQ(w.initialState(), 2u);
}

TEST(Wfst, SizeAndDegreeAccounting)
{
    WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(0, 2, -0.1f, 2);
    b.addArc(1, 2, -0.1f, 3);
    const Wfst w = b.build();
    EXPECT_EQ(w.sizeBytes(), 3 * 8u + 3 * 16u);
    EXPECT_EQ(w.maxOutDegree(), 2u);
    EXPECT_NEAR(w.meanOutDegree(), 1.0, 1e-9);
}

TEST(Figure2, StructureMatchesThePaper)
{
    const Figure2Example ex = buildFigure2Example();
    EXPECT_EQ(ex.wfst.numStates(), 7u);
    EXPECT_EQ(ex.wfst.numArcs(), 10u);
    EXPECT_EQ(ex.wfst.initialState(), 0u);

    // State 0 has two arcs, both labeled "l".
    const auto arcs0 = ex.wfst.arcs(0);
    ASSERT_EQ(arcs0.size(), 2u);
    EXPECT_EQ(ex.phonemes.name(arcs0[0].ilabel), "l");
    EXPECT_EQ(ex.phonemes.name(arcs0[1].ilabel), "l");

    // The second arc of state 2 carries weight 0.8 and emits "low"
    // on phoneme "u" (quoted verbatim in Sec. III-B).
    const auto arcs2 = ex.wfst.arcs(2);
    ASSERT_EQ(arcs2.size(), 2u);
    EXPECT_EQ(arcs2[1].dest, 3u);
    EXPECT_NEAR(std::exp(arcs2[1].weight), 0.8, 1e-5);
    EXPECT_EQ(ex.phonemes.name(arcs2[1].ilabel), "u");
    EXPECT_EQ(ex.words.name(arcs2[1].olabel), "low");

    EXPECT_EQ(ex.frames.size(), 3u);       // three frames of speech
    EXPECT_TRUE(ex.wfst.hasFinalStates());
}

TEST(Symbols, InternAndLookup)
{
    SymbolTable t;
    EXPECT_EQ(t.name(0), "<eps>");
    const auto a = t.addSymbol("low");
    const auto b = t.addSymbol("less");
    EXPECT_EQ(t.addSymbol("low"), a);  // idempotent
    EXPECT_NE(a, b);
    EXPECT_EQ(t.find("less"), b);
    EXPECT_EQ(t.find("unknown"), 0u);
    EXPECT_EQ(t.name(a), "low");
    EXPECT_EQ(t.name(999), "#999");
    EXPECT_EQ(t.size(), 3u);
}

TEST(WfstDeath, ValidateCatchesBadDest)
{
    // Hand-craft a corrupt transducer through the raw loader.
    wfst::StateVec states(1);
    states[0].firstArc = 0;
    states[0].numNonEpsArcs = 1;
    wfst::ArcVec arcs(1);
    arcs[0].dest = 5;  // out of range
    arcs[0].ilabel = 1;
    EXPECT_DEATH(loadWfstRaw(std::move(states), std::move(arcs), {}, 0),
                 "dest 5 out of range");
}

TEST(WfstDeath, ValidateCatchesLayoutViolation)
{
    // An epsilon arc placed in the non-epsilon region.
    wfst::StateVec states(1);
    states[0].firstArc = 0;
    states[0].numNonEpsArcs = 1;
    wfst::ArcVec arcs(1);
    arcs[0].dest = 0;
    arcs[0].ilabel = kEpsilonLabel;
    EXPECT_DEATH(loadWfstRaw(std::move(states), std::move(arcs), {}, 0),
                 "non-epsilon-first layout");
}
