/**
 * @file
 * Tests for the bounded FIFO and the in-order reorder buffer used by
 * the prefetching architecture.
 */

#include <gtest/gtest.h>

#include "sim/fifo.hh"
#include "sim/reorder_buffer.hh"

using namespace asr::sim;

TEST(Fifo, OrderAndCapacity)
{
    Fifo<int> f(3);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.freeSlots(), 3u);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.front(), 2);
    f.push(4);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, ClearEmpties)
{
    Fifo<int> f(2);
    f.push(1);
    f.clear();
    EXPECT_TRUE(f.empty());
    f.push(7);
    EXPECT_EQ(f.front(), 7);
}

TEST(FifoDeath, PushToFullPanics)
{
    Fifo<int> f(1);
    f.push(1);
    EXPECT_DEATH(f.push(2), "push to full FIFO");
}

TEST(FifoDeath, PopFromEmptyPanics)
{
    Fifo<int> f(1);
    EXPECT_DEATH(f.pop(), "pop of empty FIFO");
}

TEST(ReorderBuffer, InOrderRelease)
{
    ReorderBuffer<int> rob(4);
    const auto s0 = rob.allocate(10);
    const auto s1 = rob.allocate(11);
    const auto s2 = rob.allocate(12);

    // Completing out of order does not release out of order.
    rob.markReady(s2);
    EXPECT_FALSE(rob.headReady());
    rob.markReady(s0);
    EXPECT_TRUE(rob.headReady());
    EXPECT_EQ(rob.releaseHead(), 10);
    EXPECT_FALSE(rob.headReady());  // s1 not ready yet
    rob.markReady(s1);
    EXPECT_EQ(rob.releaseHead(), 11);
    EXPECT_EQ(rob.releaseHead(), 12);
    EXPECT_TRUE(rob.empty());
}

TEST(ReorderBuffer, WrapsAround)
{
    ReorderBuffer<int> rob(2);
    for (int round = 0; round < 5; ++round) {
        const auto a = rob.allocate(round * 2);
        const auto b = rob.allocate(round * 2 + 1);
        EXPECT_TRUE(rob.full());
        rob.markReady(a);
        rob.markReady(b);
        EXPECT_EQ(rob.releaseHead(), round * 2);
        EXPECT_EQ(rob.releaseHead(), round * 2 + 1);
    }
}

TEST(ReorderBuffer, ClearResets)
{
    ReorderBuffer<int> rob(2);
    rob.allocate(1);
    rob.clear();
    EXPECT_TRUE(rob.empty());
    const auto s = rob.allocate(5);
    rob.markReady(s);
    EXPECT_EQ(rob.releaseHead(), 5);
}

TEST(ReorderBufferDeath, AllocateOnFullPanics)
{
    ReorderBuffer<int> rob(1);
    rob.allocate(1);
    EXPECT_DEATH(rob.allocate(2), "allocate on full ROB");
}

TEST(ReorderBufferDeath, ReleaseNotReadyPanics)
{
    ReorderBuffer<int> rob(1);
    rob.allocate(1);
    EXPECT_DEATH(rob.releaseHead(), "release of non-ready ROB head");
}
