/**
 * @file
 * Tests for the MFCC front-end and the phoneme synthesizer.
 */

#include <algorithm>
#include <cmath>
#include <span>

#include <gtest/gtest.h>

#include "frontend/audio.hh"
#include "frontend/mfcc.hh"

using namespace asr;
using namespace asr::frontend;

TEST(MelScale, RoundTripAndAnchors)
{
    EXPECT_NEAR(Mfcc::hzToMel(0.0), 0.0, 1e-9);
    // 1000 Hz is ~1000 mel by construction of the scale.
    EXPECT_NEAR(Mfcc::hzToMel(1000.0), 999.9, 0.5);
    for (double hz : {100.0, 440.0, 1000.0, 4000.0, 7999.0})
        EXPECT_NEAR(Mfcc::melToHz(Mfcc::hzToMel(hz)), hz, 1e-6);
    // Monotonic.
    EXPECT_LT(Mfcc::hzToMel(100.0), Mfcc::hzToMel(200.0));
}

TEST(Mfcc, FrameCountMatchesConfig)
{
    Mfcc mfcc;
    // 1 s at 16 kHz, 25 ms window / 10 ms hop -> 98 frames.
    EXPECT_EQ(mfcc.numFrames(16000), 98u);
    EXPECT_EQ(mfcc.numFrames(399), 0u);   // shorter than one window
    EXPECT_EQ(mfcc.numFrames(400), 1u);
}

TEST(Mfcc, OutputShape)
{
    Synthesizer synth(8);
    const AudioSignal audio = synth.synthesize({1, 2, 3}, 5);
    Mfcc mfcc;
    const FeatureMatrix feats = mfcc.compute(audio);
    EXPECT_EQ(feats.size(), mfcc.numFrames(audio.samples.size()));
    for (const auto &row : feats)
        ASSERT_EQ(row.size(), 13u);
}

TEST(Mfcc, SilenceYieldsFiniteFeatures)
{
    AudioSignal audio;
    audio.samples.assign(16000, 0.0f);
    Mfcc mfcc;
    const FeatureMatrix feats = mfcc.compute(audio);
    for (const auto &row : feats)
        for (float v : row)
            ASSERT_TRUE(std::isfinite(v));
}

TEST(Mfcc, DistinctPhonemesProduceDistinctFeatures)
{
    // The whole premise of the acoustic model: different synthetic
    // voices must be separable in MFCC space.
    Synthesizer synth(8);
    Mfcc mfcc;
    const auto f1 = mfcc.compute(synth.synthesize({1, 1, 1}, 6));
    const auto f2 = mfcc.compute(synth.synthesize({2, 2, 2}, 6));
    ASSERT_FALSE(f1.empty());
    ASSERT_EQ(f1.size(), f2.size());

    double dist = 0.0;
    const auto &a = f1[f1.size() / 2];
    const auto &b = f2[f2.size() / 2];
    for (std::size_t d = 0; d < a.size(); ++d)
        dist += double(a[d] - b[d]) * double(a[d] - b[d]);
    EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(Mfcc, SamePhonemeStableAcrossFrames)
{
    Synthesizer synth(8);
    Mfcc mfcc;
    const auto f = mfcc.compute(synth.synthesize({3, 3, 3, 3}, 6));
    ASSERT_GT(f.size(), 10u);
    // Two interior frames of the same phoneme stay within a sane
    // bound (the amplitude envelope moves C0 around, so this is an
    // order-of-magnitude sanity check, not a tight one).
    const auto &a = f[f.size() / 2];
    const auto &b = f[f.size() / 2 + 1];
    double dist = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d)
        dist += double(a[d] - b[d]) * double(a[d] - b[d]);
    EXPECT_LT(std::sqrt(dist), 12.0);
}

TEST(Synthesizer, DeterministicOutput)
{
    Synthesizer a(8, 16000, 5), b(8, 16000, 5);
    const auto sa = a.synthesize({1, 2}, 3);
    const auto sb = b.synthesize({1, 2}, 3);
    ASSERT_EQ(sa.samples.size(), sb.samples.size());
    for (std::size_t i = 0; i < sa.samples.size(); ++i)
        ASSERT_EQ(sa.samples[i], sb.samples[i]);
}

TEST(Synthesizer, DurationMatchesFrames)
{
    Synthesizer synth(4);
    const auto audio = synth.synthesize({1, 2, 3}, 6);
    // 3 phones x 6 frames x 10 ms = 180 ms.
    EXPECT_NEAR(audio.durationSeconds(), 0.18, 1e-9);
}

TEST(Synthesizer, SamplesBounded)
{
    Synthesizer synth(16);
    const auto audio = synth.synthesize({5, 9, 2, 14}, 8);
    for (float s : audio.samples)
        ASSERT_LE(std::abs(s), 1.0f);
}

TEST(SpliceContext, ShapeAndEdgeReplication)
{
    FeatureMatrix f = {{1.0f, 10.0f}, {2.0f, 20.0f}, {3.0f, 30.0f}};
    const FeatureMatrix s = spliceContext(f, 1);
    ASSERT_EQ(s.size(), 3u);
    ASSERT_EQ(s[0].size(), 6u);
    // First frame: left context replicates frame 0.
    EXPECT_FLOAT_EQ(s[0][0], 1.0f);
    EXPECT_FLOAT_EQ(s[0][2], 1.0f);
    EXPECT_FLOAT_EQ(s[0][4], 2.0f);
    // Middle frame sees -1, 0, +1.
    EXPECT_FLOAT_EQ(s[1][0], 1.0f);
    EXPECT_FLOAT_EQ(s[1][2], 2.0f);
    EXPECT_FLOAT_EQ(s[1][4], 3.0f);
    // Last frame: right context replicates frame 2.
    EXPECT_FLOAT_EQ(s[2][4], 3.0f);
}

TEST(AppendDeltas, ShapeAndOrder)
{
    FeatureMatrix f = {{1.0f}, {2.0f}, {3.0f}, {4.0f}};
    const FeatureMatrix d1 = appendDeltas(f, 2, 1);
    ASSERT_EQ(d1.size(), 4u);
    ASSERT_EQ(d1[0].size(), 2u);  // base + delta
    const FeatureMatrix d2 = appendDeltas(f, 2, 2);
    ASSERT_EQ(d2[0].size(), 3u);  // base + delta + delta-delta
    // Base coefficients are preserved verbatim.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(d2[i][0], f[i][0]);
}

TEST(AppendDeltas, LinearRampHasConstantDelta)
{
    // For x_t = t the regression delta equals the slope (1.0) at
    // interior frames.
    FeatureMatrix f;
    for (int t = 0; t < 20; ++t)
        f.push_back({float(t)});
    const FeatureMatrix d = appendDeltas(f, 2, 2);
    for (std::size_t t = 4; t < 16; ++t) {
        EXPECT_NEAR(d[t][1], 1.0f, 1e-5) << "frame " << t;
        EXPECT_NEAR(d[t][2], 0.0f, 1e-5) << "frame " << t;
    }
}

TEST(AppendDeltas, ConstantSignalHasZeroDelta)
{
    FeatureMatrix f(10, std::vector<float>{5.0f, -3.0f});
    const FeatureMatrix d = appendDeltas(f, 2, 1);
    for (const auto &row : d) {
        EXPECT_FLOAT_EQ(row[2], 0.0f);
        EXPECT_FLOAT_EQ(row[3], 0.0f);
    }
}

TEST(AppendDeltas, EmptyInput)
{
    EXPECT_TRUE(appendDeltas(FeatureMatrix{}, 2, 2).empty());
}

TEST(StreamingMfcc, BitIdenticalToBatchAcrossChunkSizes)
{
    Synthesizer synth(8);
    const AudioSignal audio = synth.synthesize({1, 2, 3, 4}, 5);
    Mfcc mfcc;
    const FeatureMatrix batch = mfcc.compute(audio);
    ASSERT_GT(batch.size(), 0u);

    for (const std::size_t chunk :
         {std::size_t(1), std::size_t(7), std::size_t(160),
          std::size_t(401), audio.samples.size()}) {
        StreamingMfcc stream(mfcc);
        FeatureMatrix out;
        for (std::size_t base = 0; base < audio.samples.size();
             base += chunk) {
            const std::size_t len = std::min(
                chunk, audio.samples.size() - base);
            stream.push(std::span<const float>(
                audio.samples.data() + base, len));
            while (stream.frameReady())
                out.push_back(stream.pop());
        }
        ASSERT_EQ(out.size(), batch.size()) << "chunk " << chunk;
        for (std::size_t f = 0; f < out.size(); ++f)
            EXPECT_EQ(out[f], batch[f])
                << "chunk " << chunk << " frame " << f;
        EXPECT_EQ(stream.framesEmitted(), batch.size());
        EXPECT_EQ(stream.samplesPushed(), audio.samples.size());
    }
}

TEST(StreamingMfcc, OneSampleChunksWithDeferredPops)
{
    // Regression guard for the carry-over/compaction path: 1-sample
    // pushes interact with the consumed-prefix compaction in push()
    // differently depending on when pop() runs.  The test above pops
    // eagerly after every push; here frames are left to accumulate
    // and drained at irregular intervals (including a full deferral
    // to the very end), which keeps a long consumed prefix and a
    // non-empty ready backlog across thousands of 1-sample pushes.
    // Output must stay bit-identical to the whole-utterance compute.
    Synthesizer synth(8);
    const AudioSignal audio = synth.synthesize({3, 1, 4, 2}, 5);
    Mfcc mfcc;
    const FeatureMatrix batch = mfcc.compute(audio);
    ASSERT_GT(batch.size(), 0u);

    // Drain cadences, in pushed samples: never until the end, a
    // prime stride (lands mid-frame and mid-hop), and one larger
    // than several hops (a multi-frame backlog each drain).
    for (const std::size_t cadence :
         {audio.samples.size(), std::size_t(373), std::size_t(1201)}) {
        StreamingMfcc stream(mfcc);
        FeatureMatrix out;
        for (std::size_t i = 0; i < audio.samples.size(); ++i) {
            stream.push(
                std::span<const float>(audio.samples.data() + i, 1));
            if ((i + 1) % cadence == 0)
                while (stream.frameReady())
                    out.push_back(stream.pop());
        }
        while (stream.frameReady())
            out.push_back(stream.pop());
        ASSERT_EQ(out.size(), batch.size()) << "cadence " << cadence;
        for (std::size_t f = 0; f < out.size(); ++f)
            ASSERT_EQ(out[f], batch[f])
                << "cadence " << cadence << " frame " << f;
        EXPECT_EQ(stream.samplesPushed(), audio.samples.size());
    }
}

TEST(StreamingMfcc, ShortSignalYieldsNoFrames)
{
    Mfcc mfcc;
    StreamingMfcc stream(mfcc);
    const std::vector<float> samples(mfcc.frameLength() - 1, 0.5f);
    stream.push(samples);
    EXPECT_FALSE(stream.frameReady());
    EXPECT_EQ(stream.framesEmitted(), 0u);
}

TEST(StreamingMfcc, ResetRestartsAtSignalStart)
{
    Synthesizer synth(4);
    const AudioSignal audio = synth.synthesize({1, 2}, 4);
    Mfcc mfcc;
    const FeatureMatrix batch = mfcc.compute(audio);

    StreamingMfcc stream(mfcc);
    stream.push(audio.samples);
    while (stream.frameReady())
        (void)stream.pop();
    stream.reset();
    EXPECT_EQ(stream.samplesPushed(), 0u);

    // After reset the stream reproduces the batch result again,
    // including the special pre-emphasis at the very first sample.
    stream.push(audio.samples);
    FeatureMatrix out;
    while (stream.frameReady())
        out.push_back(stream.pop());
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t f = 0; f < out.size(); ++f)
        EXPECT_EQ(out[f], batch[f]) << "frame " << f;
}

TEST(Mfcc, ComputeFrameMatchesBatchRows)
{
    Synthesizer synth(4);
    const AudioSignal audio = synth.synthesize({2, 3}, 6);
    Mfcc mfcc;
    const FeatureMatrix batch = mfcc.compute(audio);
    for (std::size_t f = 0; f < batch.size(); ++f) {
        const std::size_t base = f * mfcc.frameHop();
        const float prev =
            base > 0 ? audio.samples[base - 1] : audio.samples[0];
        const auto row = mfcc.computeFrame(
            std::span<const float>(audio.samples.data() + base,
                                   mfcc.frameLength()),
            prev);
        EXPECT_EQ(row, batch[f]) << "frame " << f;
    }
}

TEST(NormalizeFeatures, ZeroMeanUnitVariance)
{
    FeatureMatrix f;
    for (int i = 0; i < 100; ++i)
        f.push_back({float(i), float(2 * i + 5)});
    normalizeFeatures(f);
    double mean0 = 0.0, var0 = 0.0;
    for (const auto &row : f)
        mean0 += row[0];
    mean0 /= 100.0;
    for (const auto &row : f)
        var0 += (row[0] - mean0) * (row[0] - mean0);
    var0 /= 100.0;
    EXPECT_NEAR(mean0, 0.0, 1e-4);
    EXPECT_NEAR(var0, 1.0, 1e-2);
}
