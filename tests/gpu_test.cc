/**
 * @file
 * Tests for the analytical CPU/GPU platform models.
 */

#include <gtest/gtest.h>

#include "gpu/platforms.hh"

using namespace asr;
using namespace asr::gpu;

namespace {

Workload
sampleWorkload()
{
    Workload w;
    w.frames = 100;                 // one second of speech
    w.arcsProcessed = 2'500'000;    // the paper's ~25 k arcs/frame
    w.tokensProcessed = 1'000'000;
    w.dnnMacsPerFrame = 30'000'000;
    return w;
}

} // namespace

TEST(Workload, FromDecodeStats)
{
    decoder::DecodeStats s;
    s.framesDecoded = 50;
    s.arcsExpanded = 1000;
    s.epsArcsExpanded = 100;
    s.tokensExpanded = 400;
    const Workload w = Workload::fromDecodeStats(s, 777);
    EXPECT_EQ(w.frames, 50u);
    EXPECT_EQ(w.arcsProcessed, 1100u);
    EXPECT_EQ(w.tokensProcessed, 400u);
    EXPECT_EQ(w.dnnMacsPerFrame, 777u);
    EXPECT_DOUBLE_EQ(w.speechSeconds(), 0.5);
}

TEST(GpuModel, ViterbiTimeScalesWithArcs)
{
    GpuModel gpu;
    Workload w = sampleWorkload();
    const double t1 = gpu.viterbiSeconds(w);
    w.arcsProcessed *= 2;
    const double t2 = gpu.viterbiSeconds(w);
    EXPECT_GT(t2, t1);
    EXPECT_LT(t2, 2.0 * t1 + 1e-9);  // launch overhead amortizes
}

TEST(GpuModel, LaunchOverheadDominatesTinyFrames)
{
    GpuModel gpu;
    Workload w;
    w.frames = 100;
    w.arcsProcessed = 100;  // almost no work
    const double t = gpu.viterbiSeconds(w);
    EXPECT_NEAR(t, 100.0 * gpu.kernelsPerFrame * gpu.kernelLaunchSec,
                t * 0.2);
}

TEST(GpuModel, RealTimeViterbiAtPaperScale)
{
    // The paper's GPU decodes one second of speech in ~30 ms; the
    // model must land in the same real-time regime (well below 1 s).
    GpuModel gpu;
    const double t = gpu.viterbiSeconds(sampleWorkload());
    EXPECT_GT(t, 0.005);
    EXPECT_LT(t, 0.1);
}

TEST(GpuModel, DnnTime)
{
    GpuModel gpu;
    const Workload w = sampleWorkload();
    const double t = gpu.dnnSeconds(w);
    EXPECT_NEAR(t, 100.0 * 30e6 / gpu.dnnMacsPerSec, 1e-9);
    // DNN on GPU is much faster than the Viterbi search (Fig. 1).
    EXPECT_LT(t, gpu.viterbiSeconds(w));
}

TEST(GpuModel, EnergyIsPowerTimesTime)
{
    GpuModel gpu;
    const Workload w = sampleWorkload();
    EXPECT_NEAR(gpu.viterbiEnergyJ(w),
                gpu.viterbiSeconds(w) * 76.4, 1e-9);
}

TEST(CpuModel, ViterbiTimeFromPerArcCost)
{
    CpuModel cpu;
    cpu.secondsPerArc = 100e-9;
    Workload w = sampleWorkload();
    EXPECT_NEAR(cpu.viterbiSeconds(w), 0.25, 1e-9);
}

TEST(CpuModel, DnnSlowerThanGpu)
{
    CpuModel cpu;
    GpuModel gpu;
    const Workload w = sampleWorkload();
    EXPECT_GT(cpu.dnnSeconds(w), gpu.dnnSeconds(w));
}

TEST(CpuModel, Figure1ShareShape)
{
    // Fig. 1: the Viterbi search takes 73% of CPU time and 86% of
    // GPU time; with the default calibration both shares must be
    // clearly dominant (> 60%).
    CpuModel cpu;
    GpuModel gpu;
    const Workload w = sampleWorkload();
    const double cpu_share =
        cpu.viterbiSeconds(w) /
        (cpu.viterbiSeconds(w) + cpu.dnnSeconds(w));
    const double gpu_share =
        gpu.viterbiSeconds(w) /
        (gpu.viterbiSeconds(w) + gpu.dnnSeconds(w));
    EXPECT_GT(cpu_share, 0.6);
    EXPECT_GT(gpu_share, 0.6);
}
