/**
 * @file
 * Tests for the analytical CPU/GPU platform models.
 */

#include <gtest/gtest.h>

#include "acoustic/backend.hh"
#include "gpu/platforms.hh"

using namespace asr;
using namespace asr::gpu;

namespace {

Workload
sampleWorkload()
{
    Workload w;
    w.frames = 100;                 // one second of speech
    w.arcsProcessed = 2'500'000;    // the paper's ~25 k arcs/frame
    w.tokensProcessed = 1'000'000;
    w.dnnMacsPerFrame = 30'000'000;
    return w;
}

} // namespace

TEST(Workload, FromDecodeStats)
{
    decoder::DecodeStats s;
    s.framesDecoded = 50;
    s.arcsExpanded = 1000;
    s.epsArcsExpanded = 100;
    s.tokensExpanded = 400;
    const Workload w = Workload::fromDecodeStats(s, 777);
    EXPECT_EQ(w.frames, 50u);
    EXPECT_EQ(w.arcsProcessed, 1100u);
    EXPECT_EQ(w.tokensProcessed, 400u);
    EXPECT_EQ(w.dnnMacsPerFrame, 777u);
    EXPECT_DOUBLE_EQ(w.speechSeconds(), 0.5);
}

TEST(GpuModel, ViterbiTimeScalesWithArcs)
{
    GpuModel gpu;
    Workload w = sampleWorkload();
    const double t1 = gpu.viterbiSeconds(w);
    w.arcsProcessed *= 2;
    const double t2 = gpu.viterbiSeconds(w);
    EXPECT_GT(t2, t1);
    EXPECT_LT(t2, 2.0 * t1 + 1e-9);  // launch overhead amortizes
}

TEST(GpuModel, LaunchOverheadDominatesTinyFrames)
{
    GpuModel gpu;
    Workload w;
    w.frames = 100;
    w.arcsProcessed = 100;  // almost no work
    const double t = gpu.viterbiSeconds(w);
    EXPECT_NEAR(t, 100.0 * gpu.kernelsPerFrame * gpu.kernelLaunchSec,
                t * 0.2);
}

TEST(GpuModel, RealTimeViterbiAtPaperScale)
{
    // The paper's GPU decodes one second of speech in ~30 ms; the
    // model must land in the same real-time regime (well below 1 s).
    GpuModel gpu;
    const double t = gpu.viterbiSeconds(sampleWorkload());
    EXPECT_GT(t, 0.005);
    EXPECT_LT(t, 0.1);
}

TEST(GpuModel, DnnTime)
{
    GpuModel gpu;
    const Workload w = sampleWorkload();
    const double t = gpu.dnnSeconds(w);
    EXPECT_NEAR(t, 100.0 * 30e6 / gpu.dnnMacsPerSec, 1e-9);
    // DNN on GPU is much faster than the Viterbi search (Fig. 1).
    EXPECT_LT(t, gpu.viterbiSeconds(w));
}

TEST(GpuModel, EnergyIsPowerTimesTime)
{
    GpuModel gpu;
    const Workload w = sampleWorkload();
    EXPECT_NEAR(gpu.viterbiEnergyJ(w),
                gpu.viterbiSeconds(w) * 76.4, 1e-9);
}

TEST(CpuModel, ViterbiTimeFromPerArcCost)
{
    CpuModel cpu;
    cpu.secondsPerArc = 100e-9;
    Workload w = sampleWorkload();
    EXPECT_NEAR(cpu.viterbiSeconds(w), 0.25, 1e-9);
}

TEST(CpuModel, DnnSlowerThanGpu)
{
    CpuModel cpu;
    GpuModel gpu;
    const Workload w = sampleWorkload();
    EXPECT_GT(cpu.dnnSeconds(w), gpu.dnnSeconds(w));
}

TEST(Workload, FromBackendReadsMacAndByteCounts)
{
    acoustic::DnnConfig dcfg;
    dcfg.inputDim = 10;
    dcfg.hidden = {20};
    dcfg.outputDim = 30;
    const acoustic::Dnn net(dcfg);
    const auto backend = acoustic::Backend::create(
        acoustic::BackendKind::Int8, net);

    decoder::DecodeStats s;
    s.framesDecoded = 40;
    const Workload w = Workload::fromBackend(s, *backend, 16);
    EXPECT_EQ(w.frames, 40u);
    EXPECT_EQ(w.dnnMacsPerFrame, backend->macsPerFrame());
    EXPECT_EQ(w.dnnWeightBytesPerPass,
              backend->weightBytesPerFrame());
    EXPECT_EQ(w.dnnBatchFrames, 16u);
    // 40 frames at batch 16 -> 3 passes.
    EXPECT_EQ(w.dnnWeightTrafficBytes(),
              3u * backend->weightBytesPerFrame());
}

TEST(DnnBandwidth, BatchOneIsBandwidthBoundBatchManyComputeBound)
{
    // A paper-scale DNN (tens of MB of weights): streaming the full
    // weight matrix per frame swamps the compute time, and batching
    // is exactly what recovers the GEMM's compute-bound regime --
    // the reason the paper offloads batched scoring to a throughput
    // device.
    CpuModel cpu;
    Workload w = sampleWorkload();
    w.dnnWeightBytesPerPass = 120'000'000;  // ~30 M float weights

    w.dnnBatchFrames = 1;
    const double t1 = cpu.dnnSeconds(w);
    const double bw_bound =
        double(w.frames) * 120e6 / cpu.memBytesPerSec;
    EXPECT_NEAR(t1, bw_bound, 1e-9);

    w.dnnBatchFrames = 100;
    const double t100 = cpu.dnnSeconds(w);
    const double compute_bound =
        double(w.frames) * 30e6 / cpu.dnnMacsPerSec;
    EXPECT_NEAR(t100, compute_bound, 1e-9);
    EXPECT_LT(t100, t1);
}

TEST(DnnBandwidth, ZeroBytesPreservesComputeOnlyModel)
{
    GpuModel gpu;
    Workload w = sampleWorkload();  // dnnWeightBytesPerPass == 0
    EXPECT_NEAR(gpu.dnnSeconds(w),
                double(w.frames) * 30e6 / gpu.dnnMacsPerSec, 1e-12);
}

TEST(CpuModel, Figure1ShareShape)
{
    // Fig. 1: the Viterbi search takes 73% of CPU time and 86% of
    // GPU time; with the default calibration both shares must be
    // clearly dominant (> 60%).
    CpuModel cpu;
    GpuModel gpu;
    const Workload w = sampleWorkload();
    const double cpu_share =
        cpu.viterbiSeconds(w) /
        (cpu.viterbiSeconds(w) + cpu.dnnSeconds(w));
    const double gpu_share =
        gpu.viterbiSeconds(w) /
        (gpu.viterbiSeconds(w) + gpu.dnnSeconds(w));
    EXPECT_GT(cpu_share, 0.6);
    EXPECT_GT(gpu_share, 0.6);
}
