/**
 * @file
 * Tests for the energy/area/power model: composition rules, the
 * paper-calibrated operating points, and the relative costs of the
 * two proposed techniques.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/power_report.hh"

using namespace asr;
using namespace asr::power;

namespace {

/** A synthetic stats record resembling one second of speech. */
accel::AccelStats
syntheticStats(bool heavy_traffic = true)
{
    accel::AccelStats s;
    s.frames = 100;
    s.cycles = 5'000'000;  // ~8.3 ms at 600 MHz
    s.tokensRead = 800'000;
    s.tokensWritten = 900'000;
    s.arcsFetched = 1'100'000;
    s.arcsEvaluated = 1'000'000;
    s.stateFetches = 700'000;
    s.stateCache.hits = 500'000;
    s.stateCache.misses = 200'000;
    s.arcCache.hits = 800'000;
    s.arcCache.misses = 300'000;
    s.tokenCache.hits = 850'000;
    s.tokenCache.misses = 50'000;
    s.hash.requests = 900'000;
    s.hash.cycles = 1'000'000;
    if (heavy_traffic) {
        s.dram.readBytes[unsigned(sim::DataClass::Arc)] = 20'000'000;
        s.dram.readBytes[unsigned(sim::DataClass::State)] =
            12'000'000;
        s.dram.writeBytes[unsigned(sim::DataClass::Token)] =
            8'000'000;
        s.dram.readBytes[unsigned(sim::DataClass::Acoustic)] =
            1'600'000;
    }
    return s;
}

} // namespace

TEST(SramModel, MonotonicInCapacity)
{
    const auto small = sramFigures(64_KiB, 1);
    const auto medium = sramFigures(512_KiB, 4);
    const auto large = sramFigures(1_MiB, 4);
    EXPECT_LT(small.readEnergyJ, medium.readEnergyJ);
    EXPECT_LT(medium.readEnergyJ, large.readEnergyJ);
    EXPECT_LT(small.leakageW, large.leakageW);
    EXPECT_LT(small.areaMm2, large.areaMm2);
}

TEST(SramModel, PlausibleMagnitudes)
{
    // 28 nm design points: sub-nJ accesses, mW-scale leakage.
    const auto f = sramFigures(1_MiB, 4);
    EXPECT_GT(f.readEnergyJ, 1e-12);
    EXPECT_LT(f.readEnergyJ, 2e-9);
    EXPECT_GT(f.leakageW, 1e-3);
    EXPECT_LT(f.leakageW, 0.2);
    EXPECT_GT(f.areaMm2, 0.5);
    EXPECT_LT(f.areaMm2, 6.0);
}

TEST(PowerReport, TotalsAreComponentSums)
{
    const auto cfg = accel::AcceleratorConfig::baseline();
    const PowerReport r = buildPowerReport(syntheticStats(), cfg);
    double dyn = 0.0, leak = 0.0, area = 0.0;
    for (const auto &c : r.components) {
        dyn += c.dynamicJ;
        leak += c.leakageW;
        area += c.areaMm2;
    }
    EXPECT_DOUBLE_EQ(r.dynamicJ(), dyn);
    EXPECT_DOUBLE_EQ(r.leakageW(), leak);
    EXPECT_DOUBLE_EQ(r.areaMm2(), area);
    EXPECT_NEAR(r.totalJ(), dyn + leak * r.seconds, 1e-12);
    EXPECT_GT(r.averageW(), 0.0);
}

TEST(PowerReport, BaseAreaMatchesPaper)
{
    // Sec. VI: the initial design occupies 24.06 mm^2.
    const auto cfg = accel::AcceleratorConfig::baseline();
    const PowerReport r = buildPowerReport(syntheticStats(), cfg);
    EXPECT_NEAR(r.areaMm2(), 24.06, 0.02);
}

TEST(PowerReport, TechniqueAreaOverheadsMatchPaper)
{
    // Prefetch FIFOs: +0.05% area; comparators: +0.02% area.
    const auto stats = syntheticStats();
    const auto base = buildPowerReport(
        stats, accel::AcceleratorConfig::baseline());
    const auto with_arc = buildPowerReport(
        stats, accel::AcceleratorConfig::withArcOpt());
    const auto with_state = buildPowerReport(
        stats, accel::AcceleratorConfig::withStateOpt());
    const auto with_both = buildPowerReport(
        stats, accel::AcceleratorConfig::withBothOpts());

    const double arc_overhead =
        (with_arc.areaMm2() - base.areaMm2()) / base.areaMm2();
    EXPECT_NEAR(arc_overhead, 0.0005, 0.0002);
    const double state_overhead =
        (with_state.areaMm2() - base.areaMm2()) / base.areaMm2();
    EXPECT_NEAR(state_overhead, 0.0002, 0.0001);
    // Final design: 24.09 mm^2 in the paper.
    EXPECT_NEAR(with_both.areaMm2(), 24.09, 0.03);
}

TEST(PowerReport, PrefetchPowerSmallShareOfTotal)
{
    // Sec. VI: the FIFOs + ROB dissipate ~1% of accelerator power.
    const auto stats = syntheticStats();
    const auto r = buildPowerReport(
        stats, accel::AcceleratorConfig::withArcOpt());
    double prefetch_w = 0.0;
    for (const auto &c : r.components)
        if (c.name == "prefetch fifos+rob")
            prefetch_w = c.dynamicJ / r.seconds;
    ASSERT_GT(prefetch_w, 0.0);
    EXPECT_LT(prefetch_w / r.averageW(), 0.05);
}

TEST(PowerReport, DramTrafficCostsEnergy)
{
    const auto cfg = accel::AcceleratorConfig::baseline();
    const auto heavy = buildPowerReport(syntheticStats(true), cfg);
    const auto light = buildPowerReport(syntheticStats(false), cfg);
    EXPECT_GT(heavy.totalJ(), light.totalJ());
}

TEST(PowerReport, LeakageScalesWithTime)
{
    const auto cfg = accel::AcceleratorConfig::baseline();
    auto stats = syntheticStats();
    const auto fast = buildPowerReport(stats, cfg);
    stats.cycles *= 2;  // same work, twice the time
    const auto slow = buildPowerReport(stats, cfg);
    EXPECT_GT(slow.totalJ(), fast.totalJ());
    EXPECT_LT(slow.averageW(), fast.averageW());
}

TEST(PowerReport, PlatformConstantsFromPaper)
{
    EXPECT_DOUBLE_EQ(kCpuAveragePowerW, 32.2);
    EXPECT_DOUBLE_EQ(kGpuAveragePowerW, 76.4);
    EXPECT_DOUBLE_EQ(kGpuDieAreaMm2, 398.0);
}
