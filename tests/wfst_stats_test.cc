/**
 * @file
 * Tests for the degree statistics used by Figure 7.
 */

#include <gtest/gtest.h>

#include "wfst/generate.hh"
#include "wfst/stats.hh"
#include "wfst/wfst.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

/** Small fixture: 1 state of degree 0, 2 of degree 1, 1 of degree 3. */
Wfst
smallNet()
{
    WfstBuilder b(4);
    b.addArc(1, 0, -0.1f, 1);
    b.addArc(2, 0, -0.1f, 1);
    b.addArc(3, 0, -0.1f, 1);
    b.addArc(3, 1, -0.1f, 2);
    b.addArc(3, 2, -0.1f, 3);
    return b.build();
}

} // namespace

TEST(DegreeStats, Histogram)
{
    const auto hist = degreeHistogram(smallNet());
    ASSERT_EQ(hist.size(), 4u);
    EXPECT_EQ(hist[0], 1u);
    EXPECT_EQ(hist[1], 2u);
    EXPECT_EQ(hist[2], 0u);
    EXPECT_EQ(hist[3], 1u);
}

TEST(DegreeStats, StaticCdf)
{
    const DegreeCdf cdf = staticDegreeCdf(smallNet());
    EXPECT_NEAR(cdf.atOrBelow(0), 0.25, 1e-9);
    EXPECT_NEAR(cdf.atOrBelow(1), 0.75, 1e-9);
    EXPECT_NEAR(cdf.atOrBelow(2), 0.75, 1e-9);
    EXPECT_NEAR(cdf.atOrBelow(3), 1.0, 1e-9);
    EXPECT_NEAR(cdf.atOrBelow(100), 1.0, 1e-9);  // past the end
}

TEST(DegreeStats, DynamicCdfWeighting)
{
    const Wfst net = smallNet();
    // Visit only the degree-3 state.
    std::vector<std::uint64_t> visits{0, 0, 0, 10};
    const DegreeCdf cdf = dynamicDegreeCdf(net, visits);
    EXPECT_NEAR(cdf.atOrBelow(2), 0.0, 1e-9);
    EXPECT_NEAR(cdf.atOrBelow(3), 1.0, 1e-9);
}

TEST(DegreeStats, CoverDegree)
{
    const DegreeCdf cdf = staticDegreeCdf(smallNet());
    EXPECT_EQ(cdf.coverDegree(0.2), 0u);
    EXPECT_EQ(cdf.coverDegree(0.5), 1u);
    EXPECT_EQ(cdf.coverDegree(0.76), 3u);
    EXPECT_EQ(cdf.coverDegree(1.0), 3u);
}

TEST(DegreeStats, EmptyVisitsGiveEmptyCdf)
{
    const Wfst net = smallNet();
    std::vector<std::uint64_t> visits(4, 0);
    const DegreeCdf cdf = dynamicDegreeCdf(net, visits);
    EXPECT_DOUBLE_EQ(cdf.atOrBelow(3), 0.0);
}

TEST(DegreeStats, GeneratorMatchesFigure7Shape)
{
    // Fig. 7: ~97% of *dynamically accessed* states have <= 15 arcs.
    // Statically the bound already holds for the generator's shape.
    GeneratorConfig cfg;
    cfg.numStates = 50000;
    cfg.seed = 41;
    const Wfst net = generateWfst(cfg);
    const DegreeCdf cdf = staticDegreeCdf(net);
    EXPECT_GT(cdf.atOrBelow(15), 0.93);
    // And the tail reaches far beyond 15 (max 770 in the paper).
    EXPECT_LT(cdf.atOrBelow(50), 1.0);
}

TEST(DegreeStats, EpsilonFraction)
{
    WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(0, 1, -0.1f, kEpsilonLabel);
    b.addArc(1, 0, -0.1f, 2);
    b.addArc(1, 0, -0.1f, kEpsilonLabel);
    const Wfst w = b.build();
    EXPECT_NEAR(epsilonArcFraction(w), 0.5, 1e-9);
}
