/**
 * @file
 * Tests for the acoustic likelihood containers and the two scorers
 * (DNN-based and synthetic).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "acoustic/backend.hh"
#include "acoustic/scorer.hh"
#include "frontend/audio.hh"

using namespace asr;
using namespace asr::acoustic;

TEST(AcousticLikelihoods, ShapeAndIndexing)
{
    AcousticLikelihoods scores(10, 32);
    EXPECT_EQ(scores.numFrames(), 10u);
    EXPECT_EQ(scores.numPhonemes(), 32u);
    EXPECT_EQ(scores.frame(0).size(), 33u);  // +1 epsilon slot
    EXPECT_EQ(scores.frameBytes(), 33u * 4);
    scores.frame(3)[5] = -1.5f;
    EXPECT_FLOAT_EQ(scores.score(3, 5), -1.5f);
}

TEST(AcousticLikelihoods, FromNested)
{
    std::vector<std::vector<float>> nested = {
        {0.0f, -1.0f, -2.0f},
        {0.0f, -3.0f, -4.0f},
    };
    const auto scores = AcousticLikelihoods::fromNested(nested);
    EXPECT_EQ(scores.numFrames(), 2u);
    EXPECT_EQ(scores.numPhonemes(), 2u);
    EXPECT_FLOAT_EQ(scores.score(1, 2), -4.0f);
}

TEST(SyntheticScorer, NormalizedLogSoftmax)
{
    SyntheticScorerConfig cfg;
    cfg.numPhonemes = 64;
    SyntheticScorer scorer(cfg);
    const auto scores = scorer.generate(5);
    for (std::size_t f = 0; f < 5; ++f) {
        double sum = 0.0;
        for (std::uint32_t p = 1; p <= 64; ++p) {
            ASSERT_LE(scores.score(f, p), 0.0f);
            sum += std::exp(double(scores.score(f, p)));
        }
        ASSERT_NEAR(sum, 1.0, 1e-4);
    }
}

TEST(SyntheticScorer, Deterministic)
{
    SyntheticScorerConfig cfg;
    cfg.numPhonemes = 16;
    cfg.seed = 9;
    const auto a = SyntheticScorer(cfg).generate(8);
    const auto b = SyntheticScorer(cfg).generate(8);
    for (std::size_t f = 0; f < 8; ++f)
        for (std::uint32_t p = 1; p <= 16; ++p)
            ASSERT_EQ(a.score(f, p), b.score(f, p));
}

TEST(SyntheticScorer, TruthBoostWins)
{
    SyntheticScorerConfig cfg;
    cfg.numPhonemes = 32;
    cfg.truthBoost = 8.0;
    SyntheticScorer scorer(cfg);
    std::vector<wfst::PhonemeId> truth = {3, 3, 7, 7, 12};
    const auto scores = scorer.generate(5, truth);
    for (std::size_t f = 0; f < 5; ++f) {
        std::uint32_t best = 1;
        for (std::uint32_t p = 2; p <= 32; ++p)
            if (scores.score(f, p) > scores.score(f, best))
                best = p;
        ASSERT_EQ(best, truth[f]) << "frame " << f;
    }
}

TEST(SyntheticScorer, TemporalCorrelation)
{
    // With high correlation the frame-to-frame score delta is much
    // smaller than the within-frame spread.
    SyntheticScorerConfig cfg;
    cfg.numPhonemes = 256;
    cfg.temporalCorrelation = 0.95;
    const auto scores = SyntheticScorer(cfg).generate(50);

    double delta = 0.0, spread = 0.0;
    int n = 0;
    for (std::size_t f = 1; f < 50; ++f) {
        for (std::uint32_t p = 1; p <= 256; ++p) {
            const double d =
                scores.score(f, p) - scores.score(f - 1, p);
            delta += d * d;
            ++n;
        }
    }
    delta = std::sqrt(delta / n);
    double mean = 0.0;
    for (std::uint32_t p = 1; p <= 256; ++p)
        mean += scores.score(10, p);
    mean /= 256.0;
    for (std::uint32_t p = 1; p <= 256; ++p) {
        const double d = scores.score(10, p) - mean;
        spread += d * d;
    }
    spread = std::sqrt(spread / 256.0);
    EXPECT_LT(delta, spread * 0.6);
}

TEST(DnnScorer, EndToEndShape)
{
    frontend::Synthesizer synth(6);
    frontend::Mfcc mfcc;
    const auto audio = synth.synthesize({1, 2, 3, 4}, 6);
    const auto feats = mfcc.compute(audio);

    DnnConfig dcfg;
    dcfg.inputDim = 13 * 3;  // context 1
    dcfg.hidden = {16};
    dcfg.outputDim = 6;
    Dnn net(dcfg);
    const auto backend =
        Backend::create(BackendKind::Reference, net);
    DnnScorer scorer(*backend, 1);
    const auto scores = scorer.score(feats);

    EXPECT_EQ(scores.numFrames(), feats.size());
    EXPECT_EQ(scores.numPhonemes(), 6u);
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        double sum = 0.0;
        for (std::uint32_t p = 1; p <= 6; ++p)
            sum += std::exp(double(scores.score(f, p)));
        ASSERT_NEAR(sum, 1.0, 1e-4);
        // Epsilon slot stays at log-zero.
        ASSERT_LE(scores.score(f, 0), wfst::kLogZero);
    }
}

TEST(DnnScorer, EmptyFeaturesGiveEmptyScores)
{
    DnnConfig dcfg;
    dcfg.inputDim = 13;
    dcfg.hidden = {8};
    dcfg.outputDim = 4;
    Dnn net(dcfg);
    const auto backend =
        Backend::create(BackendKind::Blocked, net);
    DnnScorer scorer(*backend, 0);
    const auto scores = scorer.score(frontend::FeatureMatrix{});
    EXPECT_EQ(scores.numFrames(), 0u);
}
