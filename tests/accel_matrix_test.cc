/**
 * @file
 * Parameterized sweep over the full accelerator configuration matrix
 * (prefetch x bandwidth technique x ideal hash x cache scaling x
 * FIFO depth): every point must (a) decode identically to the
 * software reference and (b) produce self-consistent timing stats.
 * This is the broad property net behind the "timing knobs never
 * change results" invariant.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "wfst/generate.hh"
#include "wfst/sorted.hh"

using namespace asr;
using namespace asr::accel;

namespace {

struct MatrixCase
{
    bool prefetch;
    bool bandwidth;
    bool ideal_hash;
    unsigned cache_div;   //!< scale Table-I caches down by this
    unsigned fifo_depth;
    std::uint32_t max_active;
};

struct SharedWorkload
{
    wfst::Wfst net;
    wfst::SortedWfst sorted;
    acoustic::AcousticLikelihoods scores;
    std::vector<wfst::WordId> refWords;        //!< uncapped decode
    wfst::LogProb refScore;
    std::vector<wfst::WordId> refWordsCapped;  //!< maxActive = 800
    wfst::LogProb refScoreCapped;

    static const SharedWorkload &
    instance()
    {
        static const SharedWorkload w = [] {
            SharedWorkload s;
            wfst::GeneratorConfig gcfg;
            gcfg.numStates = 20000;
            gcfg.numPhonemes = 128;
            gcfg.seed = 404;
            s.net = wfst::generateWfst(gcfg);
            s.sorted = wfst::sortWfstByDegree(s.net, 16);
            acoustic::SyntheticScorerConfig scfg;
            scfg.numPhonemes = 128;
            scfg.seed = 77;
            s.scores = acoustic::SyntheticScorer(scfg).generate(25);

            decoder::DecoderConfig dcfg;
            dcfg.beam = 6.0f;
            {
                decoder::ViterbiDecoder dec(s.net, dcfg);
                const auto r = dec.decode(s.scores);
                s.refWords = r.words;
                s.refScore = r.score;
            }
            dcfg.maxActive = 800;
            {
                decoder::ViterbiDecoder dec(s.net, dcfg);
                const auto r = dec.decode(s.scores);
                s.refWordsCapped = r.words;
                s.refScoreCapped = r.score;
            }
            return s;
        }();
        return w;
    }
};

} // namespace

class AccelConfigMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(AccelConfigMatrix, DecodesLikeReferenceWithSaneTiming)
{
    const MatrixCase &p = GetParam();
    const SharedWorkload &w = SharedWorkload::instance();

    AcceleratorConfig cfg;
    cfg.beam = 6.0f;
    cfg.maxActive = p.max_active;
    cfg.prefetchEnabled = p.prefetch;
    cfg.bandwidthOptEnabled = p.bandwidth;
    cfg.idealHash = p.ideal_hash;
    cfg.prefetchFifoDepth = p.fifo_depth;
    cfg.stateCache.size = 512_KiB / p.cache_div;
    cfg.arcCache.size = 1_MiB / p.cache_div;
    cfg.tokenCache.size = 512_KiB / p.cache_div;
    cfg.hashEntries = 8192;
    cfg.hashBackupEntries = 8192;

    decoder::DecodeResult result;
    AccelStats stats;
    if (p.bandwidth) {
        Accelerator acc(w.sorted, cfg);
        result = acc.decode(w.scores);
        stats = acc.stats();
    } else {
        Accelerator acc(w.net, cfg);
        result = acc.decode(w.scores);
        stats = acc.stats();
    }

    // (a) functional equivalence with the software reference run
    //     under the same pruning configuration.
    if (p.max_active == 0) {
        EXPECT_EQ(result.words, w.refWords);
        EXPECT_NEAR(result.score, w.refScore, 1e-3f);
    } else {
        EXPECT_EQ(result.words, w.refWordsCapped);
        EXPECT_NEAR(result.score, w.refScoreCapped, 1e-3f);
    }

    // (b) timing self-consistency.
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.frames, w.scores.numFrames());
    EXPECT_GE(stats.arcsFetched, stats.arcsEvaluated);
    EXPECT_LE(stats.tokensPruned, stats.tokensRead);
    if (p.ideal_hash)
        EXPECT_DOUBLE_EQ(stats.hash.avgCyclesPerRequest(), 1.0);
    else
        EXPECT_GE(stats.hash.avgCyclesPerRequest(), 1.0);
    if (p.bandwidth)
        EXPECT_GT(stats.directStates, 0u);
    else
        EXPECT_EQ(stats.directStates, 0u);
    // Traffic accounting sanity: every miss moved a line.
    EXPECT_GE(stats.dram.totalBytes(),
              64ull * (stats.arcCache.misses +
                       stats.stateCache.misses));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccelConfigMatrix,
    ::testing::Values(
        MatrixCase{false, false, false, 1, 64, 0},
        MatrixCase{false, false, false, 8, 64, 0},
        MatrixCase{true, false, false, 1, 64, 0},
        MatrixCase{true, false, false, 8, 16, 0},
        MatrixCase{false, true, false, 1, 64, 0},
        MatrixCase{false, true, false, 8, 64, 0},
        MatrixCase{true, true, false, 1, 64, 0},
        MatrixCase{true, true, false, 8, 64, 0},
        MatrixCase{false, false, true, 4, 64, 0},
        MatrixCase{true, true, true, 4, 64, 0},
        MatrixCase{true, true, false, 2, 128, 0},
        MatrixCase{false, false, false, 2, 64, 800},
        MatrixCase{true, false, false, 2, 64, 800},
        MatrixCase{false, true, false, 2, 64, 800},
        MatrixCase{true, true, true, 2, 64, 800}));

namespace {

/** Reference decode with the same maxActive for the capped rows. */
class CappedReference
{
  public:
    static const decoder::DecodeResult &
    get()
    {
        static const decoder::DecodeResult r = [] {
            const SharedWorkload &w = SharedWorkload::instance();
            decoder::DecoderConfig dcfg;
            dcfg.beam = 6.0f;
            dcfg.maxActive = 800;
            decoder::ViterbiDecoder dec(w.net, dcfg);
            return dec.decode(w.scores);
        }();
        return r;
    }
};

} // namespace

TEST(AccelConfigMatrixExtra, CappedRowsMatchCappedReference)
{
    // The maxActive rows above compare against the *capped*
    // reference; spot-check that the capped reference itself is what
    // the accelerator reproduces bit for bit.
    const SharedWorkload &w = SharedWorkload::instance();
    AcceleratorConfig cfg;
    cfg.beam = 6.0f;
    cfg.maxActive = 800;
    Accelerator acc(w.net, cfg);
    const auto r = acc.decode(w.scores, false);
    EXPECT_EQ(r.words, CappedReference::get().words);
    EXPECT_NEAR(r.score, CappedReference::get().score, 1e-3f);
}
