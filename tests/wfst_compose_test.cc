/**
 * @file
 * Tests for WFST composition (lexicon o bigram grammar): structural
 * correctness, grammar constraints enforced by decoding, and weight
 * addition.
 */

#include <set>

#include <gtest/gtest.h>

#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "wfst/compose.hh"
#include "wfst/lexicon.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

std::vector<LexiconWord>
tinyLexicon()
{
    return {
        LexiconWord{"go", {1, 2}},       // word 1
        LexiconWord{"stop", {3, 4}},     // word 2
        LexiconWord{"left", {5, 6}},     // word 3
    };
}

/** A 3-word grammar allowing only go->stop, stop->left, left->go. */
Wfst
cycleGrammar()
{
    WfstBuilder b(4);
    b.addArc(0, 1, -0.1f, 1, 1);  // start -> go
    b.addArc(1, 2, -0.2f, 2, 2);  // go -> stop
    b.addArc(2, 3, -0.3f, 3, 3);  // stop -> left
    b.addArc(3, 1, -0.4f, 1, 1);  // left -> go
    b.setFinal(1, 0.0f);
    b.setFinal(2, 0.0f);
    b.setFinal(3, 0.0f);
    b.setInitial(0);
    return b.build();
}

} // namespace

TEST(Grammar, BigramShape)
{
    Rng rng(5);
    const Wfst g = buildBigramGrammar(10, 4, rng);
    EXPECT_EQ(g.numStates(), 11u);
    EXPECT_EQ(g.initialState(), 0u);
    for (StateId s = 0; s < g.numStates(); ++s) {
        EXPECT_EQ(g.state(s).numArcs(), 4u);
        std::set<WordId> labels;
        for (const ArcEntry &a : g.arcs(s)) {
            EXPECT_FALSE(a.isEpsilon());
            EXPECT_EQ(a.ilabel, a.olabel);
            EXPECT_EQ(a.dest, a.olabel);  // context = last word
            EXPECT_TRUE(labels.insert(a.olabel).second)
                << "duplicate label (non-deterministic)";
            EXPECT_LT(a.weight, 0.0f);
        }
    }
    EXPECT_TRUE(g.hasFinalStates());
    EXPECT_LE(g.finalWeight(0), kLogZero);  // cannot end before a word
}

TEST(Compose, ReachablePairsOnly)
{
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(tinyLexicon(), words);
    const Wfst g = cycleGrammar();
    const Wfst composed = composeLexiconGrammar(lex, g);
    composed.validate();
    // The composed graph cannot exceed |L| x |G| states and must be
    // strictly smaller here (the grammar prunes word entries).
    EXPECT_LT(composed.numStates(), lex.numStates() * g.numStates());
    EXPECT_GT(composed.numStates(), 0u);
}

TEST(Compose, GrammarWeightsAdded)
{
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(tinyLexicon(), words);
    const Wfst g = cycleGrammar();
    const Wfst composed = composeLexiconGrammar(lex, g);

    // Find the word-emitting arcs of "go" in both graphs; composed
    // weight = lexicon weight + grammar weight (-0.1 from start).
    auto word_arc_weight = [&](const Wfst &net,
                               WordId word) -> LogProb {
        for (StateId s = 0; s < net.numStates(); ++s)
            for (const ArcEntry &a : net.arcs(s))
                if (a.olabel == word)
                    return a.weight;
        return kLogZero;
    };
    const LogProb lex_go = word_arc_weight(lex, words.find("go"));
    const LogProb comp_go =
        word_arc_weight(composed, words.find("go"));
    EXPECT_NEAR(comp_go, lex_go + (-0.1f), 1e-5f);
}

TEST(Compose, DecodingObeysGrammar)
{
    // Drive the composed graph with truth scores for "stop left go"
    // (grammar-legal) and check recovery; then verify an illegal
    // order cannot be produced even when the acoustics push for it.
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(tinyLexicon(), words);
    const Wfst composed = composeLexiconGrammar(lex, cycleGrammar());

    auto decode_phones = [&](std::vector<PhonemeId> phones) {
        std::vector<PhonemeId> frames;
        for (PhonemeId p : phones)
            for (int d = 0; d < 3; ++d)
                frames.push_back(p);
        acoustic::SyntheticScorerConfig scfg;
        scfg.numPhonemes = 6;
        scfg.truthBoost = 10.0;
        const auto scores = acoustic::SyntheticScorer(scfg).generate(
            frames.size(), frames);
        decoder::DecoderConfig dcfg;
        dcfg.beam = 14.0f;
        decoder::ViterbiDecoder dec(composed, dcfg);
        return dec.decode(scores).words;
    };

    // Legal: go(1,2) stop(3,4) left(5,6).
    const auto legal = decode_phones({1, 2, 3, 4, 5, 6});
    const std::vector<WordId> expect{words.find("go"),
                                     words.find("stop"),
                                     words.find("left")};
    EXPECT_EQ(legal, expect);

    // Illegal acoustics: "stop stop".  The grammar has no
    // stop->stop bigram, so the hypothesis cannot contain it.
    const auto illegal = decode_phones({3, 4, 3, 4});
    for (std::size_t i = 1; i < illegal.size(); ++i)
        EXPECT_FALSE(illegal[i - 1] == words.find("stop") &&
                     illegal[i] == words.find("stop"));
}

TEST(Compose, RandomLexiconAndGrammarDecodeEndToEnd)
{
    Rng rng(11);
    const auto lex_words = makeRandomLexicon(12, 20, rng);
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(lex_words, words);
    const Wfst g = buildBigramGrammar(12, 5, rng);
    const Wfst composed = composeLexiconGrammar(lex, g);
    composed.validate();

    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 20;
    scfg.seed = 3;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(40);
    decoder::DecoderConfig dcfg;
    dcfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(composed, dcfg);
    const auto result = dec.decode(scores);
    EXPECT_GT(result.score, kLogZero);

    // Every adjacent word pair in the hypothesis must be a bigram
    // the grammar supports.
    for (std::size_t i = 1; i < result.words.size(); ++i) {
        bool allowed = false;
        for (const ArcEntry &a : g.arcs(result.words[i - 1]))
            allowed = allowed || a.olabel == result.words[i];
        EXPECT_TRUE(allowed)
            << result.words[i - 1] << " -> " << result.words[i];
    }
}

TEST(ComposeDeath, RejectsNonAcceptorGrammar)
{
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(tinyLexicon(), words);
    WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1, 2);  // ilabel != olabel
    const Wfst bad = b.build();
    EXPECT_DEATH(composeLexiconGrammar(lex, bad),
                 "must be an acceptor");
}

TEST(ComposeDeath, RejectsNonDeterministicGrammar)
{
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(tinyLexicon(), words);
    WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1, 1);
    b.addArc(0, 0, -0.2f, 1, 1);  // duplicate input label
    const Wfst bad = b.build();
    EXPECT_DEATH(composeLexiconGrammar(lex, bad),
                 "input-deterministic");
}

TEST(Connect, RemovesUnreachableAndDeadStates)
{
    // 0 -> 1 -> 2(final); 3 unreachable; 4 reachable dead end.
    WfstBuilder b(5);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(1, 2, -0.1f, 2);
    b.addArc(0, 4, -0.1f, 3);   // 4 has no path to a final state
    b.addArc(3, 2, -0.1f, 4);   // 3 is unreachable
    b.setFinal(2, 0.0f);
    const Wfst net = b.build();

    const Wfst trimmed = connect(net);
    trimmed.validate();
    EXPECT_EQ(trimmed.numStates(), 3u);
    EXPECT_EQ(trimmed.numArcs(), 2u);
    EXPECT_TRUE(trimmed.hasFinalStates());
}

TEST(Connect, KeepsEverythingWhenNoFinals)
{
    WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(1, 0, -0.1f, 2);
    // state 2 unreachable
    b.addArc(2, 0, -0.1f, 3);
    const Wfst trimmed = connect(b.build());
    EXPECT_EQ(trimmed.numStates(), 2u);  // only unreachable removed
    EXPECT_EQ(trimmed.numArcs(), 2u);
}

TEST(Connect, ComposedGraphDecodesIdentically)
{
    Rng rng(21);
    const auto lex_words = makeRandomLexicon(10, 16, rng);
    SymbolTable words;
    const Wfst lex = buildLexiconWfst(lex_words, words);
    const Wfst g = buildBigramGrammar(10, 4, rng);
    const Wfst composed = composeLexiconGrammar(lex, g);
    const Wfst trimmed = connect(composed);
    EXPECT_LE(trimmed.numStates(), composed.numStates());

    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 16;
    scfg.seed = 9;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(30);
    decoder::DecoderConfig dcfg;
    dcfg.beam = 10.0f;
    // connect() preserves exactly the paths that can end in a final
    // state, so equivalence holds under final-weight selection.
    dcfg.useFinalWeights = true;
    decoder::ViterbiDecoder d1(composed, dcfg);
    decoder::ViterbiDecoder d2(trimmed, dcfg);
    const auto r1 = d1.decode(scores);
    const auto r2 = d2.decode(scores);
    EXPECT_EQ(r1.words, r2.words);
    EXPECT_NEAR(r1.score, r2.score, 1e-4f);
}
