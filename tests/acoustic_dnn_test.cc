/**
 * @file
 * Tests for the DNN acoustic model: shapes, training dynamics and
 * the ability to learn separable synthetic data -- the property the
 * full pipeline depends on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "acoustic/dnn.hh"
#include "common/rng.hh"

using namespace asr;
using namespace asr::acoustic;

namespace {

/** Two Gaussian blobs in 4-D, labels 0/1. */
void
makeBlobs(Matrix &x, std::vector<std::uint32_t> &y, std::size_t n,
          std::uint64_t seed)
{
    Rng rng(seed);
    x = Matrix(n, 4);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const bool cls = rng.bernoulli(0.5);
        y[i] = cls ? 1 : 0;
        const double mean = cls ? 1.5 : -1.5;
        auto row = x.row(i);
        for (auto &v : row)
            v = float(rng.gaussian(mean, 1.0));
    }
}

} // namespace

TEST(Dnn, OutputShapeAndNormalization)
{
    DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {8};
    cfg.outputDim = 3;
    Dnn net(cfg);

    Matrix x(5, 4);
    const Matrix logp = net.forward(x);
    ASSERT_EQ(logp.rows(), 5u);
    ASSERT_EQ(logp.cols(), 3u);
    for (std::size_t r = 0; r < 5; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 3; ++c)
            sum += std::exp(double(logp.at(r, c)));
        ASSERT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Dnn, ParameterCount)
{
    DnnConfig cfg;
    cfg.inputDim = 10;
    cfg.hidden = {20, 30};
    cfg.outputDim = 5;
    Dnn net(cfg);
    // (10*20+20) + (20*30+30) + (30*5+5) = 220 + 630 + 155.
    EXPECT_EQ(net.numParameters(), 1005u);
    EXPECT_EQ(net.macsPerFrame(), 10u * 20 + 20 * 30 + 30 * 5);
}

TEST(Dnn, DeterministicInitialization)
{
    DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {8};
    cfg.outputDim = 2;
    cfg.seed = 77;
    Dnn a(cfg), b(cfg);
    Matrix x(3, 4);
    for (std::size_t i = 0; i < x.data().size(); ++i)
        x.data()[i] = float(i);
    const Matrix pa = a.forward(x);
    const Matrix pb = b.forward(x);
    for (std::size_t i = 0; i < pa.data().size(); ++i)
        ASSERT_EQ(pa.data()[i], pb.data()[i]);
}

TEST(Dnn, TrainingReducesLoss)
{
    DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {16};
    cfg.outputDim = 2;
    cfg.learningRate = 0.1f;
    Dnn net(cfg);

    Matrix x;
    std::vector<std::uint32_t> y;
    makeBlobs(x, y, 256, 3);

    const float first = net.trainStep(x, y);
    float last = first;
    for (int e = 0; e < 40; ++e)
        last = net.trainStep(x, y);
    EXPECT_LT(last, first * 0.5f);
}

TEST(Dnn, LearnsSeparableBlobs)
{
    DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {16};
    cfg.outputDim = 2;
    cfg.learningRate = 0.1f;
    Dnn net(cfg);

    Matrix x;
    std::vector<std::uint32_t> y;
    makeBlobs(x, y, 512, 5);
    for (int e = 0; e < 60; ++e)
        net.trainStep(x, y);

    Matrix xt;
    std::vector<std::uint32_t> yt;
    makeBlobs(xt, yt, 512, 6);  // held-out
    EXPECT_GT(net.accuracy(xt, yt), 0.95f);
}

TEST(Dnn, MultiClassLearning)
{
    // Four corners of a 2-D square, one class each.
    DnnConfig cfg;
    cfg.inputDim = 2;
    cfg.hidden = {32, 16};
    cfg.outputDim = 4;
    cfg.learningRate = 0.08f;
    Dnn net(cfg);

    Rng rng(9);
    auto sample = [&](Matrix &x, std::vector<std::uint32_t> &y,
                      std::size_t n) {
        x = Matrix(n, 2);
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto cls = std::uint32_t(rng.below(4));
            y[i] = cls;
            const double cx = (cls & 1) ? 2.0 : -2.0;
            const double cy = (cls & 2) ? 2.0 : -2.0;
            x.at(i, 0) = float(rng.gaussian(cx, 0.6));
            x.at(i, 1) = float(rng.gaussian(cy, 0.6));
        }
    };

    Matrix x;
    std::vector<std::uint32_t> y;
    for (int e = 0; e < 80; ++e) {
        sample(x, y, 256);
        net.trainStep(x, y);
    }
    sample(x, y, 1024);
    EXPECT_GT(net.accuracy(x, y), 0.9f);
}

TEST(Dnn, AccuracyOfUntrainedNetIsChance)
{
    DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {8};
    cfg.outputDim = 2;
    Dnn net(cfg);
    Matrix x;
    std::vector<std::uint32_t> y;
    makeBlobs(x, y, 2048, 8);
    const float acc = net.accuracy(x, y);
    EXPECT_GT(acc, 0.2f);
    EXPECT_LT(acc, 0.8f);
}
