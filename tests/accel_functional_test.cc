/**
 * @file
 * Functional correctness of the accelerator model: it must decode
 * exactly like the independent software reference on the paper's
 * Figure-2 example and on randomized WFSTs, and none of the timing
 * knobs (prefetching, cache sizes, hash sizes, sorted layout) may
 * change results.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "acoustic/scorer.hh"
#include "common/logging.hh"
#include "decoder/reference.hh"
#include "decoder/viterbi.hh"
#include "wfst/examples.hh"
#include "wfst/generate.hh"
#include "wfst/sorted.hh"

using namespace asr;

namespace {

acoustic::AcousticLikelihoods
syntheticScores(std::uint32_t num_phonemes, std::size_t frames,
                std::uint64_t seed)
{
    acoustic::SyntheticScorerConfig cfg;
    cfg.numPhonemes = num_phonemes;
    cfg.seed = seed;
    return acoustic::SyntheticScorer(cfg).generate(frames);
}

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

} // namespace

TEST(AccelFunctional, Figure2ExampleRecognizesLow)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    accel::AcceleratorConfig cfg;
    cfg.beam = ex.beam;
    accel::Accelerator acc(ex.wfst, cfg);

    const auto scores =
        acoustic::AcousticLikelihoods::fromNested(ex.frames);
    const decoder::DecodeResult result = acc.decode(scores);

    ASSERT_EQ(result.words.size(), 1u);
    EXPECT_EQ(ex.words.name(result.words[0]), "low");
    EXPECT_NEAR(result.score, ex.expectedBestScore, 1e-4f);
    // The trace of Figure 2c: tokens 1 and 4 pruned at frame 2.
    EXPECT_EQ(acc.stats().tokensPruned, 2u);
}

TEST(AccelFunctional, Figure2MatchesSoftwareDecoderExactly)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    accel::AcceleratorConfig acfg;
    acfg.beam = ex.beam;
    accel::Accelerator acc(ex.wfst, acfg);

    decoder::DecoderConfig dcfg;
    dcfg.beam = ex.beam;
    decoder::ViterbiDecoder sw(ex.wfst, dcfg);

    const auto scores =
        acoustic::AcousticLikelihoods::fromNested(ex.frames);
    const auto hw_result = acc.decode(scores);
    const auto sw_result = sw.decode(scores);

    EXPECT_EQ(hw_result.words, sw_result.words);
    EXPECT_FLOAT_EQ(hw_result.score, sw_result.score);
    EXPECT_EQ(hw_result.bestState, sw_result.bestState);
}

/** Parameterized equivalence sweep over WFST shapes and seeds. */
struct EquivalenceCase
{
    wfst::StateId states;
    std::uint32_t phonemes;
    double eps_fraction;
    bool forward_eps;
    std::uint64_t seed;
};

class AccelEquivalence
    : public ::testing::TestWithParam<EquivalenceCase>
{
};

TEST_P(AccelEquivalence, MatchesSoftwareAndSortedLayout)
{
    const EquivalenceCase &param = GetParam();

    wfst::GeneratorConfig gcfg;
    gcfg.numStates = param.states;
    gcfg.numPhonemes = param.phonemes;
    gcfg.epsilonFraction = param.eps_fraction;
    gcfg.forwardEpsilonOnly = param.forward_eps;
    gcfg.numWords = 50;
    gcfg.seed = param.seed;
    const wfst::Wfst net = wfst::generateWfst(gcfg);

    const auto scores =
        syntheticScores(param.phonemes, 20, param.seed * 7 + 1);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 8.0f;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto sw_result = sw.decode(scores);

    accel::AcceleratorConfig acfg;
    acfg.beam = 8.0f;
    accel::Accelerator acc(net, acfg);
    const auto hw_result = acc.decode(scores);

    EXPECT_EQ(hw_result.words, sw_result.words);
    EXPECT_NEAR(hw_result.score, sw_result.score, 1e-3f);

    // The sorted layout (Sec. IV-B) is a pure relabeling: decoding
    // over it must give identical words and scores.
    const wfst::SortedWfst sorted = wfst::sortWfstByDegree(net, 16);
    accel::AcceleratorConfig scfg =
        accel::AcceleratorConfig::withStateOpt();
    scfg.beam = 8.0f;
    accel::Accelerator sorted_acc(sorted, scfg);
    const auto sorted_result = sorted_acc.decode(scores);

    EXPECT_EQ(sorted_result.words, sw_result.words);
    EXPECT_NEAR(sorted_result.score, sw_result.score, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AccelEquivalence,
    ::testing::Values(
        EquivalenceCase{50, 8, 0.115, true, 1},
        EquivalenceCase{50, 8, 0.115, true, 2},
        EquivalenceCase{200, 16, 0.115, true, 3},
        EquivalenceCase{200, 16, 0.0, true, 4},
        EquivalenceCase{200, 16, 0.3, true, 5},
        EquivalenceCase{500, 32, 0.115, false, 6},
        EquivalenceCase{500, 32, 0.115, true, 7},
        EquivalenceCase{1000, 64, 0.2, false, 8},
        EquivalenceCase{1000, 64, 0.115, true, 9},
        EquivalenceCase{100, 4, 0.115, true, 10}));

TEST(AccelFunctional, MatchesBruteForceWithoutBeam)
{
    // With an effectively infinite beam the accelerator must agree
    // with exhaustive dynamic programming over all states.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 40;
        gcfg.numPhonemes = 6;
        gcfg.numWords = 12;
        gcfg.seed = seed;
        const wfst::Wfst net = wfst::generateWfst(gcfg);
        const auto scores = syntheticScores(6, 12, seed + 100);

        accel::AcceleratorConfig acfg;
        acfg.beam = 1e9f;
        accel::Accelerator acc(net, acfg);
        const auto hw_result = acc.decode(scores, false);

        const auto ref =
            decoder::fullViterbiReference(net, scores);
        EXPECT_EQ(hw_result.words, ref.words) << "seed " << seed;
        EXPECT_NEAR(hw_result.score, ref.score, 1e-3f)
            << "seed " << seed;
    }
}

TEST(AccelFunctional, TimingKnobsNeverChangeResults)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 400;
    gcfg.numPhonemes = 32;
    gcfg.seed = 99;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(32, 15, 4242);

    accel::AcceleratorConfig base;
    base.beam = 8.0f;
    accel::Accelerator a0(net, base);
    const auto r0 = a0.decode(scores);

    // Prefetching.
    accel::AcceleratorConfig pf = base;
    pf.prefetchEnabled = true;
    accel::Accelerator a1(net, pf);
    const auto r1 = a1.decode(scores);
    EXPECT_EQ(r1.words, r0.words);
    EXPECT_FLOAT_EQ(r1.score, r0.score);

    // Tiny caches.
    accel::AcceleratorConfig small = base;
    small.stateCache.size = 8_KiB;
    small.arcCache.size = 16_KiB;
    small.tokenCache.size = 8_KiB;
    accel::Accelerator a2(net, small);
    const auto r2 = a2.decode(scores);
    EXPECT_EQ(r2.words, r0.words);
    EXPECT_FLOAT_EQ(r2.score, r0.score);

    // Perfect caches.
    accel::AcceleratorConfig perfect = base;
    perfect.makeCachesPerfect();
    accel::Accelerator a3(net, perfect);
    const auto r3 = a3.decode(scores);
    EXPECT_EQ(r3.words, r0.words);
    EXPECT_FLOAT_EQ(r3.score, r0.score);

    // Ideal hash changes cycle costs, not outcomes.
    accel::AcceleratorConfig ideal = base;
    ideal.idealHash = true;
    accel::Accelerator a4(net, ideal);
    const auto r4 = a4.decode(scores);
    EXPECT_EQ(r4.words, r0.words);
    EXPECT_FLOAT_EQ(r4.score, r0.score);

    // Small hash (more collisions / overflow).
    accel::AcceleratorConfig tiny_hash = base;
    tiny_hash.hashEntries = 64;
    tiny_hash.hashBackupEntries = 32;
    accel::Accelerator a5(net, tiny_hash);
    const auto r5 = a5.decode(scores);
    EXPECT_EQ(r5.words, r0.words);
    EXPECT_FLOAT_EQ(r5.score, r0.score);
}

TEST(AccelFunctional, MultipleUtterancesAccumulateStats)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 100;
    gcfg.numPhonemes = 8;
    gcfg.seed = 5;
    const wfst::Wfst net = wfst::generateWfst(gcfg);

    accel::AcceleratorConfig cfg;
    cfg.beam = 8.0f;
    accel::Accelerator acc(net, cfg);

    acc.decode(syntheticScores(8, 10, 1));
    const auto frames_one = acc.stats().frames;
    acc.decode(syntheticScores(8, 10, 2));
    EXPECT_EQ(acc.stats().frames, 2 * frames_one);

    acc.clearStats();
    EXPECT_EQ(acc.stats().frames, 0u);
    EXPECT_EQ(acc.stats().cycles, 0u);
}

TEST(AccelStreaming, MatchesBatchDecode)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 600;
    gcfg.numPhonemes = 32;
    gcfg.seed = 314;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(32, 18, 2718);

    accel::AcceleratorConfig cfg;
    cfg.beam = 8.0f;

    accel::Accelerator batch(net, cfg);
    const auto batch_result = batch.decode(scores);

    accel::Accelerator stream(net, cfg);
    stream.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f)
        stream.streamFrame(scores.frame(f));
    const auto stream_result = stream.streamFinish();

    EXPECT_EQ(stream_result.words, batch_result.words);
    EXPECT_FLOAT_EQ(stream_result.score, batch_result.score);
    EXPECT_EQ(stream.stats().cycles, batch.stats().cycles);
    EXPECT_EQ(stream.stats().dram.totalBytes(),
              batch.stats().dram.totalBytes());
}

TEST(AccelStreaming, PartialHypothesesGrow)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 400;
    gcfg.numPhonemes = 16;
    gcfg.numWords = 30;
    gcfg.wordLabelProb = 0.5;  // plenty of words to observe
    gcfg.seed = 9;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(16, 20, 12);

    accel::AcceleratorConfig cfg;
    cfg.beam = 8.0f;
    accel::Accelerator acc(net, cfg);
    acc.streamBegin();
    std::size_t last_len = 0;
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        acc.streamFrame(scores.frame(f), /*run_timing=*/false);
        const auto partial = acc.streamPartial();
        // Partial hypotheses exist mid-stream and are usable.
        if (f + 1 == scores.numFrames())
            last_len = partial.size();
    }
    const auto final_result = acc.streamFinish(false);
    // The final (closed) hypothesis extends or equals the last
    // partial one.
    EXPECT_GE(final_result.words.size(), last_len > 0 ? 1u : 0u);
}

TEST(AccelStreamingDeath, MisuseIsCaught)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    accel::AcceleratorConfig cfg;
    cfg.beam = ex.beam;
    accel::Accelerator acc(ex.wfst, cfg);
    EXPECT_DEATH(acc.streamPartial(), "outside an utterance");
    acc.streamBegin();
    EXPECT_DEATH(acc.streamBegin(), "during an open utterance");
}
