/**
 * @file
 * Tests for the token hash table: functional behaviour against a
 * std::unordered_map reference, collision-chain cycle accounting,
 * backup/overflow behaviour and the pending/requeue discipline.
 */

#include <unordered_map>

#include <gtest/gtest.h>

#include "accel/hash_table.hh"
#include "common/rng.hh"

using namespace asr;
using namespace asr::accel;

TEST(TokenHash, InsertAndImprove)
{
    TokenHash h(64, 32, false);
    auto r1 = h.upsert(5, -1.0f, 100);
    EXPECT_TRUE(r1.isNew);
    EXPECT_TRUE(r1.improved);
    EXPECT_EQ(h.size(), 1u);
    EXPECT_EQ(h.distinctTokens(), 1u);

    // Worse score: no change.
    auto r2 = h.upsert(5, -2.0f, 101);
    EXPECT_FALSE(r2.isNew);
    EXPECT_FALSE(r2.improved);

    // Better score: improved, not new.
    auto r3 = h.upsert(5, -0.5f, 102);
    EXPECT_FALSE(r3.isNew);
    EXPECT_TRUE(r3.improved);
    EXPECT_FLOAT_EQ(h.token(0).score, -0.5f);
    EXPECT_EQ(h.token(0).backpointer, 102u);
}

TEST(TokenHash, BestScoreTracksMaximum)
{
    TokenHash h(64, 32, false);
    EXPECT_LE(h.bestScore(), wfst::kLogZero);
    h.upsert(1, -3.0f, 0);
    h.upsert(2, -1.0f, 1);
    h.upsert(3, -2.0f, 2);
    EXPECT_FLOAT_EQ(h.bestScore(), -1.0f);
    h.clear();
    EXPECT_LE(h.bestScore(), wfst::kLogZero);
}

TEST(TokenHash, PendingRequeueDiscipline)
{
    TokenHash h(64, 32, false);
    h.upsert(7, -2.0f, 0);
    EXPECT_EQ(h.size(), 1u);

    // Improving a still-pending token must not grow the list.
    h.upsert(7, -1.5f, 1);
    EXPECT_EQ(h.size(), 1u);

    // After the token is read, an improvement requeues it.
    const TokenSlot read = h.readForProcess(0);
    EXPECT_FLOAT_EQ(read.score, -1.5f);
    h.upsert(7, -1.0f, 2);
    EXPECT_EQ(h.size(), 2u);       // requeued
    EXPECT_EQ(h.distinctTokens(), 1u);
    EXPECT_FLOAT_EQ(h.token(1).score, -1.0f);

    // A further non-improvement does not requeue again.
    h.upsert(7, -3.0f, 3);
    EXPECT_EQ(h.size(), 2u);
}

TEST(TokenHash, MatchesUnorderedMapReference)
{
    TokenHash h(256, 128, false);
    std::unordered_map<wfst::StateId, float> ref;
    Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
        const auto state = wfst::StateId(rng.below(1500));
        const float score = float(rng.uniform(-20.0, 0.0));
        h.upsert(state, score, std::uint32_t(i));
        auto it = ref.find(state);
        if (it == ref.end() || score > it->second)
            ref[state] = score;
    }
    ASSERT_EQ(h.distinctTokens(), ref.size());
    // Walk the live list: every distinct state's final score must
    // match the reference map.
    std::unordered_map<wfst::StateId, float> got;
    for (std::size_t i = 0; i < h.size(); ++i) {
        const TokenSlot &t = h.token(i);
        got[t.state] = t.score;  // later entries repeat states
    }
    ASSERT_EQ(got.size(), ref.size());
    for (const auto &[state, score] : ref)
        ASSERT_FLOAT_EQ(got[state], score) << "state " << state;
}

TEST(TokenHash, CollisionChainsCostCycles)
{
    // A 2-bucket table forces collisions.
    TokenHash h(2, 64, false);
    std::uint64_t multi_cycle = 0;
    for (wfst::StateId s = 0; s < 40; ++s) {
        const auto r = h.upsert(s, -1.0f, s);
        multi_cycle += r.cycles > 1;
    }
    EXPECT_GT(multi_cycle, 30u);  // nearly everything chains
    EXPECT_GT(h.stats().collisionWalks, 0u);
    EXPECT_GT(h.stats().maxChain, 4u);
    EXPECT_GT(h.stats().avgCyclesPerRequest(), 2.0);
}

TEST(TokenHash, IdealModeAlwaysOneCycle)
{
    TokenHash h(2, 64, true);
    for (wfst::StateId s = 0; s < 40; ++s) {
        const auto r = h.upsert(s, -1.0f, s);
        ASSERT_EQ(r.cycles, 1u);
        ASSERT_EQ(r.overflowHops, 0u);
    }
}

TEST(TokenHash, OverflowWhenBackupExhausted)
{
    // 4 buckets, 4 backup slots: the 9th distinct colliding token
    // must spill to the off-chip overflow buffer.
    TokenHash h(4, 4, false);
    for (wfst::StateId s = 0; s < 32; ++s)
        h.upsert(s, -1.0f, s);
    EXPECT_GT(h.overflowSize(), 0u);
    EXPECT_GT(h.stats().overflowHops, 0u);
    // All 32 tokens are still functionally present.
    EXPECT_EQ(h.distinctTokens(), 32u);
}

TEST(TokenHash, ClearIsGenerational)
{
    TokenHash h(64, 16, false);
    for (wfst::StateId s = 0; s < 50; ++s)
        h.upsert(s, -1.0f, s);
    h.clear();
    EXPECT_EQ(h.size(), 0u);
    EXPECT_EQ(h.distinctTokens(), 0u);
    EXPECT_EQ(h.overflowSize(), 0u);
    // Old contents must not resurface.
    auto r = h.upsert(3, -5.0f, 9);
    EXPECT_TRUE(r.isNew);
    EXPECT_EQ(h.size(), 1u);
    EXPECT_FLOAT_EQ(h.token(0).score, -5.0f);
}

TEST(TokenHash, ManyClearCyclesStaySound)
{
    TokenHash h(32, 16, false);
    Rng rng(5);
    for (int frame = 0; frame < 100; ++frame) {
        const unsigned n = 1 + unsigned(rng.below(40));
        for (unsigned i = 0; i < n; ++i)
            h.upsert(wfst::StateId(rng.below(200)),
                     float(rng.uniform(-10.0, 0.0)), i);
        ASSERT_LE(h.distinctTokens(), n);
        ASSERT_GE(h.size(), h.distinctTokens());
        h.clear();
    }
}

TEST(TokenHash, LiveListInsertionOrder)
{
    TokenHash h(64, 16, false);
    h.upsert(10, -1.0f, 0);
    h.upsert(20, -2.0f, 1);
    h.upsert(30, -3.0f, 2);
    EXPECT_EQ(h.token(0).state, 10u);
    EXPECT_EQ(h.token(1).state, 20u);
    EXPECT_EQ(h.token(2).state, 30u);
}
