/**
 * @file
 * Invariants of the micro-operation trace that connects the
 * functional expander to the timing engine, plus equivalence of the
 * accelerator and the software decoder under histogram pruning and
 * across serialization round trips.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/address_map.hh"
#include "accel/expand.hh"
#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "wfst/generate.hh"
#include "wfst/io.hh"
#include "wfst/sorted.hh"

using namespace asr;
using namespace asr::accel;

namespace {

wfst::Wfst
makeNet(wfst::StateId states, std::uint64_t seed)
{
    wfst::GeneratorConfig cfg;
    cfg.numStates = states;
    cfg.numPhonemes = 64;
    cfg.seed = seed;
    return wfst::generateWfst(cfg);
}

acoustic::AcousticLikelihoods
makeScores(std::size_t frames, std::uint64_t seed)
{
    acoustic::SyntheticScorerConfig cfg;
    cfg.numPhonemes = 64;
    cfg.seed = seed;
    return acoustic::SyntheticScorer(cfg).generate(frames);
}

} // namespace

TEST(AccelTrace, StructuralInvariants)
{
    const wfst::Wfst net = makeNet(500, 11);
    AcceleratorConfig cfg;
    cfg.beam = 8.0f;
    Expander exp(net, nullptr, cfg);
    exp.beginUtterance();

    const auto scores = makeScores(12, 3);
    FrameTrace trace;
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        exp.expandFrame(scores.frame(f), trace);

        // Token ops partition the arc ops exactly.
        std::uint32_t covered = 0;
        for (const TokenOp &op : trace.tokenOps) {
            if (op.pruned) {
                ASSERT_EQ(op.arcOpCount, 0u);
                continue;
            }
            ASSERT_EQ(op.arcOpBegin, covered);
            covered += op.arcOpCount;
            // Exactly one of: comparator hit / state fetch.
            ASSERT_TRUE(op.direct != op.needsStateFetch);
            if (op.needsStateFetch) {
                ASSERT_GE(op.stateAddr, kStateBase);
                ASSERT_LT(op.stateAddr,
                          kStateBase + net.numStates() * 8ull);
            }
        }
        ASSERT_EQ(covered, trace.arcOps.size());

        for (const ArcOp &aop : trace.arcOps) {
            ASSERT_GE(aop.addr, kArcBase);
            ASSERT_LT(aop.addr, kArcBase + net.numArcs() * 16ull);
            if (aop.tokenWrite) {
                ASSERT_TRUE(aop.hashRequest);
                ASSERT_GE(aop.tokenAddr, kTokenBase);
            }
            if (aop.hashRequest) {
                ASSERT_GE(aop.hashCycles, 1u);
            }
        }
    }
}

TEST(AccelTrace, DeterministicAcrossRuns)
{
    const wfst::Wfst net = makeNet(300, 21);
    const auto scores = makeScores(10, 7);
    AcceleratorConfig cfg;
    cfg.beam = 7.0f;

    auto collect = [&] {
        Expander exp(net, nullptr, cfg);
        exp.beginUtterance();
        std::vector<std::size_t> shape;
        FrameTrace trace;
        for (std::size_t f = 0; f < scores.numFrames(); ++f) {
            exp.expandFrame(scores.frame(f), trace);
            shape.push_back(trace.tokenOps.size());
            shape.push_back(trace.arcOps.size());
        }
        return shape;
    };
    EXPECT_EQ(collect(), collect());
}

TEST(AccelTrace, EquivalenceUnderHistogramPruning)
{
    // maxActive engages on purpose (tiny cap): both implementations
    // must still agree because they share the same cutoff rule.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const wfst::Wfst net = makeNet(800, seed);
        const auto scores = makeScores(15, seed + 40);

        decoder::DecoderConfig dcfg;
        dcfg.beam = 10.0f;
        dcfg.maxActive = 30;
        decoder::ViterbiDecoder sw(net, dcfg);
        const auto sw_result = sw.decode(scores);

        AcceleratorConfig acfg;
        acfg.beam = 10.0f;
        acfg.maxActive = 30;
        Accelerator hw(net, acfg);
        const auto hw_result = hw.decode(scores, false);

        EXPECT_EQ(hw_result.words, sw_result.words)
            << "seed " << seed;
        EXPECT_NEAR(hw_result.score, sw_result.score, 1e-3f)
            << "seed " << seed;
    }
}

TEST(AccelTrace, EquivalenceAfterSerializationRoundTrip)
{
    const wfst::Wfst net = makeNet(400, 33);
    const std::string path =
        ::testing::TempDir() + "/roundtrip_decode.wfst";
    wfst::saveWfst(net, path);
    const wfst::Wfst loaded = wfst::loadWfst(path);
    std::remove(path.c_str());

    const auto scores = makeScores(12, 9);
    AcceleratorConfig cfg;
    cfg.beam = 8.0f;
    Accelerator a(net, cfg);
    Accelerator b(loaded, cfg);
    const auto ra = a.decode(scores, false);
    const auto rb = b.decode(scores, false);
    EXPECT_EQ(ra.words, rb.words);
    EXPECT_FLOAT_EQ(ra.score, rb.score);
}

TEST(AccelTrace, SortedLayoutSameCyclePrecision)
{
    // Decoding the sorted layout with the comparator network must
    // agree with the software decoder on the *original* layout even
    // with the cycle model running (full timing enabled).
    const wfst::Wfst net = makeNet(1500, 55);
    const wfst::SortedWfst sorted = wfst::sortWfstByDegree(net, 16);
    const auto scores = makeScores(15, 19);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 8.0f;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto sw_result = sw.decode(scores);

    AcceleratorConfig acfg = AcceleratorConfig::withBothOpts();
    acfg.beam = 8.0f;
    Accelerator hw(sorted, acfg);
    const auto hw_result = hw.decode(scores, true);

    EXPECT_EQ(hw_result.words, sw_result.words);
    EXPECT_NEAR(hw_result.score, sw_result.score, 1e-3f);
    EXPECT_GT(hw.stats().directStates, 0u);
    EXPECT_GT(hw.stats().cycles, 0u);
}

TEST(AccelTrace, CyclicEpsilonGraphsDecodeAndTerminate)
{
    // Stress the interleaved epsilon traversal on graphs whose
    // epsilon subgraph contains cycles.
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 600;
    gcfg.numPhonemes = 32;
    gcfg.forwardEpsilonOnly = false;
    gcfg.epsilonFraction = 0.25;
    gcfg.seed = 77;
    const wfst::Wfst net = wfst::generateWfst(gcfg);

    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 32;
    scfg.seed = 5;
    const auto scores =
        acoustic::SyntheticScorer(scfg).generate(12);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 9.0f;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto sw_result = sw.decode(scores);

    AcceleratorConfig acfg;
    acfg.beam = 9.0f;
    Accelerator hw(net, acfg);
    const auto hw_result = hw.decode(scores, true);

    EXPECT_EQ(hw_result.words, sw_result.words);
    EXPECT_NEAR(hw_result.score, sw_result.score, 1e-3f);
}
