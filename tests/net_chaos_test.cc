/**
 * @file
 * Chaos suite for the robustness layer:
 *
 *  - asr::fault registry semantics: deterministic replay per seed,
 *    the retryable-only restriction, fire budgets, point filters,
 *    and the pre-registered canonical seam set.
 *  - OverloadMonitor state machine: degrade/shed entry, hysteresis
 *    relaxation, the reject-only policy, and the degradation knobs.
 *  - Loopback chaos: a serving run under a retryable-only fault
 *    schedule (EINTR/EAGAIN, short I/O, stalls at every syscall
 *    seam) is bit-identical to the fault-free run; destructive
 *    schedules (connection resets) never crash, leak, or wedge the
 *    server; every registered in-process fault point fires at least
 *    once across the workload (coverage assertion).
 *  - Deadline propagation over the wire: an OPEN-declared budget
 *    forecloses an abandoned stream with DEADLINE_EXCEEDED.
 *  - Graceful degradation over the wire: a Degraded server admits
 *    streams with shrunk knobs and marks their results; a Shedding
 *    server answers RETRY_AFTER with its computed backoff hint.
 *
 * The fault seed honours ASR_FAULT_SEED so CI can sweep schedules.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "net/client.hh"
#include "net/overload.hh"
#include "net/server.hh"
#include "wfst/compact.hh"
#include "wfst/generate.hh"

using namespace asr;
using api::Engine;
using api::EngineOptions;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

/** CI sweeps schedules by exporting ASR_FAULT_SEED. */
std::uint64_t
envSeed()
{
    const char *s = std::getenv("ASR_FAULT_SEED");
    return (s && *s) ? std::strtoull(s, nullptr, 10) : 1;
}

constexpr unsigned kPhonemes = 8;

class NetChaos : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2027;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));

        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 53;
        model = new pipeline::AsrModel(*net, mcfg);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    void TearDown() override { fault::disarm(); }

    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    struct WireResult
    {
        std::vector<wfst::WordId> words;
        float score = 0.0f;
        bool ok = false;
    };

    /** One utterance over the wire: open, chunked push, finish. */
    static WireResult
    runUtterance(net::Client &client, std::uint32_t stream,
                 const frontend::AudioSignal &audio)
    {
        WireResult r;
        if (!client.openStreamRetrying(stream, 200))
            return r;
        const std::vector<float> &s = audio.samples;
        constexpr std::size_t kChunk = 1600;
        for (std::size_t base = 0; base < s.size(); base += kChunk) {
            const std::size_t len = std::min(kChunk, s.size() - base);
            if (!client.pushChunk(
                    stream,
                    std::span<const float>(s.data() + base, len)))
                return r;
        }
        net::FinalResult fin;
        if (!client.finishStream(stream, fin))
            return r;
        r.words = fin.words;
        r.score = fin.score;
        r.ok = true;
        return r;
    }

    static bool
    eventually(const std::function<bool()> &pred)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (std::chrono::steady_clock::now() < deadline) {
            if (pred())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        return pred();
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *NetChaos::net = nullptr;
pipeline::AsrModel *NetChaos::model = nullptr;

} // namespace

// ---------------------------------------------------------------------------
// Fault registry semantics.
// ---------------------------------------------------------------------------

TEST(FaultRegistry, DisarmedSeamsAreTransparent)
{
    fault::disarm();
    EXPECT_FALSE(fault::armed());
    EXPECT_EQ(fault::failErrno("net.server.recv", {EINTR, EAGAIN}), 0);
    EXPECT_EQ(fault::shortenIo("net.server.recv.short", 4096), 4096u);
    EXPECT_FALSE(fault::failAlloc("wfst.compact.load.alloc"));
    fault::stall("api.engine.tick.stall");  // must not sleep
}

TEST(FaultRegistry, SameSeedReplaysTheSameSchedule)
{
    const auto draw = [](std::uint64_t seed) {
        fault::Config cfg;
        cfg.seed = seed;
        cfg.rate = 0.5;
        fault::ScopedArm armed(cfg);
        std::vector<int> seq;
        for (unsigned i = 0; i < 256; ++i)
            seq.push_back(fault::failErrno("net.server.recv",
                                           {EINTR, EAGAIN, ECONNRESET}));
        return seq;
    };
    const std::vector<int> a = draw(7);
    const std::vector<int> b = draw(7);
    const std::vector<int> c = draw(8);
    EXPECT_EQ(a, b);  // replay: arming resets the schedule position
    EXPECT_NE(a, c);  // a different seed is a different schedule
    // The schedule actually fires and actually passes.
    EXPECT_NE(*std::max_element(a.begin(), a.end()), 0);
    EXPECT_EQ(*std::min_element(a.begin(), a.end()), 0);
}

TEST(FaultRegistry, RetryableOnlyNeverPicksDestructiveErrnos)
{
    fault::Config cfg;
    cfg.seed = envSeed();
    cfg.rate = 1.0;
    cfg.retryableOnly = true;
    fault::ScopedArm armed(cfg);
    for (unsigned i = 0; i < 200; ++i) {
        const int e = fault::failErrno(
            "net.server.recv", {EINTR, EAGAIN, ECONNRESET});
        EXPECT_TRUE(e == 0 || e == EINTR || e == EAGAIN ||
                    e == EWOULDBLOCK)
            << e;
        // A seam whose only candidates are destructive never fires.
        EXPECT_EQ(fault::failErrno("net.client.send", {EPIPE}), 0);
        EXPECT_FALSE(fault::failAlloc("wfst.compact.load.alloc"));
    }
}

TEST(FaultRegistry, ShortenedIoStaysWithinBounds)
{
    fault::Config cfg;
    cfg.seed = 11;
    cfg.rate = 1.0;
    fault::ScopedArm armed(cfg);
    bool shortened = false;
    for (unsigned i = 0; i < 64; ++i) {
        const std::size_t got =
            fault::shortenIo("net.server.recv.short", 4096);
        EXPECT_GE(got, 1u);
        EXPECT_LE(got, 4096u);
        shortened = shortened || got < 4096;
    }
    EXPECT_TRUE(shortened);
    // A 1-byte request cannot be shortened (0 would look like EOF).
    EXPECT_EQ(fault::shortenIo("net.server.recv.short", 1), 1u);
}

TEST(FaultRegistry, MaxFiresBoundsTheTotalInjected)
{
    fault::resetStats();
    fault::Config cfg;
    cfg.seed = 3;
    cfg.rate = 1.0;
    cfg.maxFires = 5;
    fault::ScopedArm armed(cfg);
    for (unsigned i = 0; i < 100; ++i)
        fault::failErrno("net.server.recv", {EINTR});
    std::uint64_t fires = 0;
    for (const auto &p : fault::points())
        fires += p.fires;
    EXPECT_EQ(fires, 5u);
}

TEST(FaultRegistry, OnlyFilterRestrictsFiringPoints)
{
    fault::resetStats();
    fault::Config cfg;
    cfg.seed = 5;
    cfg.rate = 1.0;
    cfg.only = {"net.server.recv"};
    fault::ScopedArm armed(cfg);
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_NE(fault::failErrno("net.server.recv", {EINTR}), 0);
        EXPECT_EQ(fault::failErrno("net.server.send", {EINTR}), 0);
    }
    for (const auto &p : fault::points()) {
        if (p.name == "net.server.recv")
            EXPECT_EQ(p.fires, 32u);
        else
            EXPECT_EQ(p.fires, 0u) << p.name;
    }
}

TEST(FaultRegistry, CanonicalSeamsArePreRegistered)
{
    std::set<std::string> names;
    for (const auto &p : fault::points())
        names.insert(p.name);
    for (const char *want :
         {"net.server.accept", "net.server.recv",
          "net.server.recv.short", "net.server.send",
          "net.server.send.short", "net.server.wake",
          "net.client.connect", "net.client.recv",
          "net.client.recv.short", "net.client.send",
          "net.client.send.short", "wfst.compact.load.alloc",
          "api.engine.tick.stall"})
        EXPECT_TRUE(names.count(want)) << want;
}

// ---------------------------------------------------------------------------
// Overload state machine.
// ---------------------------------------------------------------------------

TEST(OverloadMonitorTest, DegradesShedsAndRelaxesWithHysteresis)
{
    net::OverloadOptions opts;
    opts.smoothing = 1.0;  // unsmoothed: thresholds act immediately
    net::OverloadMonitor m(opts);
    using State = net::OverloadMonitor::State;

    EXPECT_EQ(m.observe(1.0, 0), State::Healthy);
    EXPECT_EQ(m.observe(opts.degradeTickLagMs, 0), State::Degraded);
    // Above the degrade exit but below entry: hysteresis holds.
    EXPECT_EQ(m.observe(opts.degradeTickLagMs * 0.7, 0),
              State::Degraded);
    EXPECT_EQ(m.observe(opts.shedTickLagMs, 0), State::Shedding);
    EXPECT_EQ(m.observe(opts.shedTickLagMs * 1.5, 0),
              State::Shedding);
    // Easing below the shed entry relaxes *through* Degraded, never
    // straight to Healthy.
    EXPECT_EQ(m.observe(opts.shedTickLagMs * 0.7, 0),
              State::Degraded);
    // Above the degrade exit: Degraded's own hysteresis holds.
    EXPECT_EQ(m.observe(opts.degradeTickLagMs * 0.7, 0),
              State::Degraded);
    EXPECT_EQ(m.observe(0.0, 0), State::Healthy);
    EXPECT_EQ(m.degradedEntries(), 2u);
    EXPECT_EQ(m.sheddingEntries(), 1u);

    // Queue depth alone also drives the same transitions.
    net::OverloadMonitor q(opts);
    EXPECT_EQ(q.observe(0.0, opts.degradeQueueDepth),
              State::Degraded);
    EXPECT_EQ(q.observe(0.0, opts.shedQueueDepth), State::Shedding);
}

TEST(OverloadMonitorTest, RejectOnlyPolicyNeverDegrades)
{
    net::OverloadOptions opts;
    opts.smoothing = 1.0;
    opts.enableDegraded = false;
    net::OverloadMonitor m(opts);
    using State = net::OverloadMonitor::State;

    EXPECT_EQ(m.observe(opts.degradeTickLagMs * 2, 0),
              State::Healthy);  // the Degraded band collapses
    EXPECT_EQ(m.observe(opts.shedTickLagMs, 0), State::Shedding);
    // And relaxes straight back to Healthy once below the shed exit.
    EXPECT_EQ(m.observe(0.0, 0), State::Healthy);
    EXPECT_EQ(m.degradedEntries(), 0u);
}

TEST(OverloadMonitorTest, DegradedKnobsRespectFloorsAndBase)
{
    net::OverloadOptions opts;  // beamScale .6, beamFloor 6, floor 500
    net::OverloadMonitor m(opts);
    EXPECT_FLOAT_EQ(m.degradedBeam(14.0f), 14.0f * 0.6f);
    EXPECT_FLOAT_EQ(m.degradedBeam(1.0f), opts.beamFloor);
    EXPECT_FLOAT_EQ(m.degradedBeam(0.0f), opts.beamFloor);

    EXPECT_EQ(m.degradedMaxActive(0), opts.degradedMaxActive);
    EXPECT_EQ(m.degradedMaxActive(4000), opts.degradedMaxActive);
    EXPECT_EQ(m.degradedMaxActive(800), 800u);
    // A base already below the floor is never *grown* by degrading.
    EXPECT_EQ(m.degradedMaxActive(100), 100u);
}

TEST(OverloadMonitorTest, BackoffHintScalesWithSeverityAndCaps)
{
    net::OverloadOptions opts;
    opts.smoothing = 1.0;
    net::OverloadMonitor m(opts);
    m.observe(opts.shedTickLagMs, 0);
    const std::uint32_t at_threshold = m.backoffHintMs();
    EXPECT_EQ(at_threshold, opts.backoffBaseMs);
    m.observe(opts.shedTickLagMs * 3, 0);
    EXPECT_GT(m.backoffHintMs(), at_threshold);
    m.observe(opts.shedTickLagMs * 1e6, 0);
    EXPECT_EQ(m.backoffHintMs(), opts.backoffCapMs);
}

// ---------------------------------------------------------------------------
// Loopback chaos.
// ---------------------------------------------------------------------------

TEST_F(NetChaos, RetryableFaultScheduleIsBitIdenticalToFaultFree)
{
    const std::vector<frontend::AudioSignal> utts = {
        testAudio(21), testAudio(22), testAudio(23)};

    const auto serve = [&]() {
        std::vector<WireResult> out;
        EngineOptions eopts;
        eopts.numThreads = 2;
        eopts.batchScoring = true;
        Engine engine(*model, eopts);
        net::Server server(engine, net::ServerOptions{});
        net::Client client;
        // Sessions are numbered by arrival, so a fixed sequential
        // workload decodes with identical session ids every run.
        EXPECT_TRUE(client.connectRetrying("127.0.0.1",
                                           server.port(), 50, 1));
        for (std::size_t u = 0; u < utts.size(); ++u)
            out.push_back(runUtterance(
                client, std::uint32_t(u + 1), utts[u]));
        client.disconnect();
        server.stop();
        return out;
    };

    const std::vector<WireResult> baseline = serve();
    for (const WireResult &r : baseline)
        ASSERT_TRUE(r.ok);

    std::uint64_t fires = 0;
    for (std::uint64_t round = 0; round < 3; ++round) {
        fault::resetStats();
        fault::Config cfg;
        cfg.seed = envSeed() + round;
        cfg.rate = 0.2;
        cfg.retryableOnly = true;
        cfg.stallMaxMs = 2;
        fault::ScopedArm armed(cfg);
        const std::vector<WireResult> chaotic = serve();
        for (const auto &p : fault::points())
            fires += p.fires;
        ASSERT_EQ(chaotic.size(), baseline.size());
        for (std::size_t u = 0; u < baseline.size(); ++u) {
            ASSERT_TRUE(chaotic[u].ok)
                << "utterance " << u << " seed "
                << (envSeed() + round);
            // The whole point: retryable faults at every seam are
            // invisible in the decoded words and score.
            EXPECT_EQ(chaotic[u].words, baseline[u].words) << u;
            EXPECT_EQ(chaotic[u].score, baseline[u].score) << u;
        }
    }
    // The schedules were not vacuous.
    EXPECT_GT(fires, 0u);
}

TEST_F(NetChaos, DestructiveServerFaultsNeverWedgeOrCrash)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    net::Server server(engine, net::ServerOptions{});
    const frontend::AudioSignal audio = testAudio(31);

    {
        fault::Config cfg;
        cfg.seed = envSeed();
        cfg.rate = 0.15;
        cfg.only = {"net.server.accept", "net.server.recv",
                    "net.server.recv.short", "net.server.send",
                    "net.server.send.short"};
        fault::ScopedArm armed(cfg);
        // Clients under connection-killing faults: failures are
        // expected and tolerated; crashes, leaks, and wedges are not.
        for (unsigned attempt = 0; attempt < 8; ++attempt) {
            net::Client client;
            if (!client.connectRetrying("127.0.0.1", server.port(),
                                        20, 1))
                continue;
            (void)runUtterance(client, 1, audio);
        }
    }

    // Disarmed, the same server must serve a clean client end to
    // end: nothing wedged, no slot leaked.
    net::Client clean;
    ASSERT_TRUE(clean.connect("127.0.0.1", server.port()));
    const WireResult r = runUtterance(clean, 9, audio);
    EXPECT_TRUE(r.ok) << clean.lastError();
    clean.disconnect();
    server.stop();

    const net::ServerCounters c = server.counters();
    EXPECT_EQ(c.connectionsClosed, c.connectionsAccepted);
    EXPECT_GE(c.streamsFinished, 1u);
}

TEST_F(NetChaos, EveryInProcessFaultPointFiresUnderTargetedChaos)
{
    // Deterministic coverage: arm one point at a time at rate 1.0
    // with a small fire budget (the budget guarantees forward
    // progress past seams whose injected errno would otherwise loop,
    // like EINTR on accept) and drive a workload through it.  Every
    // canonical seam must both be reached and actually inject.
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;  // the coordinator tick is a seam
    Engine engine(*model, eopts);
    net::Server server(engine, net::ServerOptions{});
    const frontend::AudioSignal audio = testAudio(41, 4);

    std::set<std::string> covered;
    const auto firesOf = [](const char *name) {
        for (const auto &p : fault::points())
            if (p.name == name)
                return p.fires;
        return std::uint64_t(0);
    };

    for (const char *point :
         {"net.server.accept", "net.server.recv",
          "net.server.recv.short", "net.server.send",
          "net.server.send.short", "net.client.connect",
          "net.client.recv", "net.client.recv.short",
          "net.client.send", "net.client.send.short",
          "api.engine.tick.stall"}) {
        fault::resetStats();
        fault::Config cfg;
        cfg.seed = envSeed();
        cfg.rate = 1.0;
        cfg.maxFires = 4;
        cfg.stallMaxMs = 1;
        cfg.only = {point};
        fault::ScopedArm armed(cfg);
        // Destructive injections (ECONNRESET, EPIPE) legitimately
        // fail the utterance; the assertion is that the seam fired
        // and nothing crashed or wedged.
        net::Client client;
        if (client.connectRetrying("127.0.0.1", server.port(), 40,
                                   1))
            (void)runUtterance(client, 1, audio);
        EXPECT_GT(firesOf(point), 0u) << point << " never fired";
        covered.insert(point);
    }

    // net.server.wake guards the stop-path self-wake write.
    {
        fault::resetStats();
        fault::Config cfg;
        cfg.rate = 1.0;
        cfg.maxFires = 4;
        cfg.only = {"net.server.wake"};
        fault::ScopedArm armed(cfg);
        server.stop();
        EXPECT_GT(firesOf("net.server.wake"), 0u);
        covered.insert("net.server.wake");
    }

    // Completeness: a newly registered seam must be added to this
    // test (or, if fatal by design, to the death-test allowlist).
    covered.insert("wfst.compact.load.alloc");  // proven by death test
    for (const auto &p : fault::points())
        EXPECT_TRUE(covered.count(p.name))
            << p.name << " is not covered by the chaos suite";
}

TEST(FaultDeath, CompactLoadAllocFailureDiesWithPointName)
{
    // A sentinel-only compact image: structurally valid, so the only
    // way to die is the injected allocation failure.
    const auto load_under_alloc_failure = [] {
        fault::Config cfg;
        cfg.rate = 1.0;
        cfg.only = {"wfst.compact.load.alloc"};
        fault::ScopedArm armed(cfg);
        (void)wfst::CompactArcs::load({{0, 0, 0}}, {},
                                      wfst::WeightMode::Exact, {}, 0);
    };
    EXPECT_DEATH(load_under_alloc_failure(),
                 "wfst\\.compact\\.load\\.alloc");
}

// ---------------------------------------------------------------------------
// Deadlines over the wire.
// ---------------------------------------------------------------------------

TEST_F(NetChaos, DeadlineForeclosesAnAbandonedStreamOverTheWire)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    net::Server server(engine, net::ServerOptions{});

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_EQ(client.openStream(1, /*deadline_ms=*/120),
              net::Client::OpenOutcome::Ok);
    const frontend::AudioSignal audio = testAudio(51, 3);
    ASSERT_TRUE(client.pushChunk(
        1, std::span<const float>(audio.samples.data(),
                                  std::min<std::size_t>(
                                      1600, audio.samples.size()))));

    // Abandon the stream past its budget: the watchdog cancels the
    // engine side, the server answers DEADLINE_EXCEEDED.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    net::FinalResult fin;
    EXPECT_FALSE(client.finishStream(1, fin));
    EXPECT_TRUE(client.deadlineExceeded()) << client.lastError();

    EXPECT_TRUE(eventually(
        [&] { return server.counters().deadlinesSent >= 1; }));
    EXPECT_TRUE(eventually(
        [&] { return engine.stats().deadlinesExpired >= 1; }));

    // A fresh deadline-free stream still works: the foreclosure
    // consumed only its own slot.
    client.disconnect();
    net::Client fresh;
    ASSERT_TRUE(fresh.connect("127.0.0.1", server.port()));
    const WireResult ok = runUtterance(fresh, 2, testAudio(52));
    EXPECT_TRUE(ok.ok) << fresh.lastError();
    server.stop();
}

TEST_F(NetChaos, GenerousDeadlineDoesNotDisturbTheResult)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    net::Server server(engine, net::ServerOptions{});
    const frontend::AudioSignal audio = testAudio(61);

    // Reference without a deadline, then the same audio under a
    // budget it cannot plausibly exceed: identical result.
    net::Client a;
    ASSERT_TRUE(a.connect("127.0.0.1", server.port()));
    const WireResult ref = runUtterance(a, 1, audio);
    ASSERT_TRUE(ref.ok);
    a.disconnect();

    net::Client b;
    ASSERT_TRUE(b.connect("127.0.0.1", server.port()));
    ASSERT_EQ(b.openStream(1, /*deadline_ms=*/60'000),
              net::Client::OpenOutcome::Ok);
    const std::vector<float> &s = audio.samples;
    for (std::size_t base = 0; base < s.size(); base += 1600) {
        const std::size_t len = std::min<std::size_t>(
            1600, s.size() - base);
        ASSERT_TRUE(b.pushChunk(
            1, std::span<const float>(s.data() + base, len)));
    }
    net::FinalResult fin;
    ASSERT_TRUE(b.finishStream(1, fin)) << b.lastError();
    EXPECT_FALSE(b.deadlineExceeded());
    EXPECT_EQ(fin.words, ref.words);
    EXPECT_EQ(server.counters().deadlinesSent, 0u);
    server.stop();
}

// ---------------------------------------------------------------------------
// Graceful degradation over the wire.
// ---------------------------------------------------------------------------

namespace {

/** Overload thresholds a loopback test trips instantly. */
net::ServerOptions
instantOverload(bool degraded_band, bool shedding)
{
    net::ServerOptions sopts;
    sopts.overload.smoothing = 1.0;
    // Any pass takes > 1e-9 ms of work, so these entry thresholds
    // are crossed on the server's first event-loop pass.
    sopts.overload.degradeTickLagMs = 1e-9;
    sopts.overload.shedTickLagMs = shedding ? 1e-9 : 1e9;
    sopts.overload.enableDegraded = degraded_band;
    sopts.overload.backoffBaseMs = 77;
    return sopts;
}

} // namespace

TEST_F(NetChaos, DegradedAdmissionShrinksKnobsAndMarksResults)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    net::Server server(engine, instantOverload(true, false));

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    // The connect itself completes a loop pass, entering Degraded
    // before this OPEN is processed.
    ASSERT_TRUE(eventually([&] {
        return server.overloadState() ==
               net::OverloadMonitor::State::Degraded;
    }));
    ASSERT_TRUE(client.openStreamRetrying(1, 50));

    net::PartialResult partial;
    ASSERT_TRUE(client.requestPartial(1, partial));
    EXPECT_TRUE(partial.degraded);

    const frontend::AudioSignal audio = testAudio(71);
    const std::vector<float> &s = audio.samples;
    for (std::size_t base = 0; base < s.size(); base += 1600) {
        const std::size_t len = std::min<std::size_t>(
            1600, s.size() - base);
        ASSERT_TRUE(client.pushChunk(
            1, std::span<const float>(s.data() + base, len)));
    }
    net::FinalResult fin;
    ASSERT_TRUE(client.finishStream(1, fin)) << client.lastError();
    EXPECT_TRUE(fin.degraded);

    EXPECT_GE(server.counters().degradedOpens, 1u);
    EXPECT_TRUE(eventually(
        [&] { return engine.stats().degradedStreams >= 1; }));
    server.stop();
}

TEST_F(NetChaos, SheddingServerAnswersRetryAfterWithBackoffHint)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    const net::ServerOptions sopts = instantOverload(true, true);
    net::Server server(engine, sopts);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(eventually([&] {
        return server.overloadState() ==
               net::OverloadMonitor::State::Shedding;
    }));
    EXPECT_EQ(client.openStream(1),
              net::Client::OpenOutcome::RetryAfter);
    // The hint is the monitor's computed backoff, not the static
    // retryAfterMs -- and at least the configured base.
    EXPECT_GE(client.retryAfterMs(), sopts.overload.backoffBaseMs);
    EXPECT_GE(server.counters().overloadSheds, 1u);
    server.stop();
}

TEST_F(NetChaos, RejectOnlyPolicyNeverMarksResultsDegraded)
{
    EngineOptions eopts;
    eopts.numThreads = 2;
    eopts.batchScoring = true;
    Engine engine(*model, eopts);
    // Reject-only: the degrade band is disabled, its (instantly
    // crossed) threshold must have no effect.
    net::Server server(engine, instantOverload(false, false));

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    const WireResult r = runUtterance(client, 1, testAudio(81));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(server.counters().degradedOpens, 0u);
    EXPECT_EQ(server.overloadState(),
              net::OverloadMonitor::State::Healthy);
    server.stop();
}
