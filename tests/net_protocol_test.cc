/**
 * @file
 * Conformance tests for the wire protocol (asr::net):
 *
 *  - Codec round-trips: samples, word lists, FINAL, ERROR and
 *    RETRY_AFTER payloads survive encode -> decode bit-exactly.
 *  - Exact-consumption discipline: every decoder rejects both
 *    truncated and over-long payloads instead of guessing.
 *  - FrameReader reassembly: frames arrive whole no matter how the
 *    byte stream is sliced (byte-at-a-time, every split offset,
 *    many frames in one read).
 *  - Poisoning: structurally invalid lengths (shorter than the fixed
 *    fields, beyond the payload bound) permanently poison the
 *    reader; garbage after a valid prefix does not resurrect it.
 *  - A corrupt element count cannot cause a large allocation: counts
 *    are validated against the bytes actually present first.
 */

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "net/protocol.hh"

using namespace asr;
using namespace asr::net;

namespace {

std::vector<std::uint8_t>
frameBytes(FrameType type, std::uint32_t stream_id,
           std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> wire;
    appendFrame(wire, type, stream_id, payload);
    return wire;
}

} // namespace

// ---------------------------------------------------------------------------
// Scalar and payload codecs.
// ---------------------------------------------------------------------------

TEST(NetProtocol, ScalarsRoundTripLittleEndian)
{
    std::vector<std::uint8_t> buf;
    putU16(buf, 0xBEEF);
    putU32(buf, 0xDEADBEEFu);
    putF32(buf, -1.5f);
    putF64(buf, 2.0e-3);
    // Byte layout is defined, not implementation-defined: LE.
    EXPECT_EQ(buf[0], 0xEF);
    EXPECT_EQ(buf[1], 0xBE);
    EXPECT_EQ(buf[2], 0xEF);
    EXPECT_EQ(buf[5], 0xDE);

    std::size_t off = 0;
    std::uint16_t u16 = 0;
    std::uint32_t u32 = 0;
    float f32 = 0;
    double f64 = 0;
    EXPECT_TRUE(getU16(buf, off, u16));
    EXPECT_TRUE(getU32(buf, off, u32));
    EXPECT_TRUE(getF32(buf, off, f32));
    EXPECT_TRUE(getF64(buf, off, f64));
    EXPECT_EQ(u16, 0xBEEF);
    EXPECT_EQ(u32, 0xDEADBEEFu);
    EXPECT_EQ(f32, -1.5f);
    EXPECT_EQ(f64, 2.0e-3);
    EXPECT_EQ(off, buf.size());
    // One byte past the end: every getter reports truncation.
    EXPECT_FALSE(getU16(buf, off, u16));
}

TEST(NetProtocol, SamplesRoundTrip)
{
    Rng rng(99);
    std::vector<float> in;
    for (unsigned i = 0; i < 317; ++i)
        in.push_back(float(rng.below(2000)) / 1000.0f - 1.0f);
    std::vector<std::uint8_t> payload;
    encodeSamples(payload, in);
    EXPECT_EQ(payload.size(), in.size() * 4);

    std::vector<float> out;
    ASSERT_TRUE(decodeSamples(payload, out));
    EXPECT_EQ(out, in);
}

TEST(NetProtocol, SamplesRejectNonMultipleOfFour)
{
    std::vector<std::uint8_t> payload(7, 0);
    std::vector<float> out;
    EXPECT_FALSE(decodeSamples(payload, out));
}

TEST(NetProtocol, WordsRoundTripIncludingEmpty)
{
    for (const std::size_t n : {std::size_t(0), std::size_t(1),
                                std::size_t(40)}) {
        std::vector<wfst::WordId> in;
        for (std::size_t i = 0; i < n; ++i)
            in.push_back(wfst::WordId(1000 + i));
        std::vector<std::uint8_t> payload;
        encodeWords(payload, in);
        std::vector<wfst::WordId> out;
        ASSERT_TRUE(decodeWords(payload, out)) << n;
        EXPECT_EQ(out, in);
    }
}

TEST(NetProtocol, WordsRejectTrailingBytes)
{
    std::vector<std::uint8_t> payload;
    encodeWords(payload, std::vector<wfst::WordId>{1, 2, 3});
    payload.push_back(0);  // one stray byte
    std::vector<wfst::WordId> out;
    EXPECT_FALSE(decodeWords(payload, out));
}

TEST(NetProtocol, CorruptWordCountCannotAllocate)
{
    // A 4-byte payload claiming 2^32-1 words: the decoder must
    // reject from the byte budget without reserving anything.
    std::vector<std::uint8_t> payload;
    putU32(payload, std::numeric_limits<std::uint32_t>::max());
    std::vector<wfst::WordId> out;
    EXPECT_FALSE(decodeWords(payload, out));
    EXPECT_TRUE(out.empty());
}

TEST(NetProtocol, FinalResultRoundTrip)
{
    FinalResult in;
    in.words = {4, 9, 17};
    in.score = -123.456f;
    in.audioSeconds = 1.875;
    std::vector<std::uint8_t> payload;
    encodeFinal(payload, in);

    FinalResult out;
    ASSERT_TRUE(decodeFinal(payload, out));
    EXPECT_EQ(out.words, in.words);
    EXPECT_EQ(out.score, in.score);
    EXPECT_EQ(out.audioSeconds, in.audioSeconds);

    // Truncating anywhere makes it undecodable.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        FinalResult r;
        EXPECT_FALSE(decodeFinal(
            std::span<const std::uint8_t>(payload.data(), cut), r))
            << "cut at " << cut;
    }
}

TEST(NetProtocol, FinalResultRejectsUnknownFlagBits)
{
    FinalResult in;
    in.words = {4};
    in.degraded = true;
    std::vector<std::uint8_t> payload;
    encodeFinal(payload, in);

    FinalResult out;
    ASSERT_TRUE(decodeFinal(payload, out));
    EXPECT_TRUE(out.degraded);

    // A flags byte with bits this peer does not understand is a
    // malformed frame: unknown semantics must not be dropped.
    payload[0] |= 0x02;
    EXPECT_FALSE(decodeFinal(payload, out));
}

TEST(NetProtocol, PartialResultRoundTripAndFlags)
{
    for (const bool degraded : {false, true}) {
        PartialResult in;
        in.words = {7, 11, 13};
        in.degraded = degraded;
        std::vector<std::uint8_t> payload;
        encodePartial(payload, in);

        PartialResult out;
        ASSERT_TRUE(decodePartial(payload, out)) << degraded;
        EXPECT_EQ(out.words, in.words);
        EXPECT_EQ(out.degraded, degraded);

        // Exact consumption: truncation anywhere, or a stray byte,
        // is undecodable.
        for (std::size_t cut = 0; cut < payload.size(); ++cut) {
            PartialResult r;
            EXPECT_FALSE(decodePartial(
                std::span<const std::uint8_t>(payload.data(), cut),
                r))
                << "cut at " << cut;
        }
        payload.push_back(0);
        EXPECT_FALSE(decodePartial(payload, out));
    }
}

TEST(NetProtocol, OpenRequestDefaultsEncodeAsLegacyEmptyPayload)
{
    OpenRequest in;
    std::vector<std::uint8_t> payload;
    encodeOpenRequest(payload, in);
    EXPECT_TRUE(payload.empty());

    // Both the legacy empty payload and an explicit deadline decode.
    OpenRequest out;
    out.deadlineMs = 123;  // must be reset by the decoder
    ASSERT_TRUE(decodeOpenRequest(payload, out));
    EXPECT_EQ(out.deadlineMs, 0u);

    in.deadlineMs = 1500;
    encodeOpenRequest(payload, in);
    EXPECT_EQ(payload.size(), 4u);
    ASSERT_TRUE(decodeOpenRequest(payload, out));
    EXPECT_EQ(out.deadlineMs, 1500u);

    // Anything that is neither empty nor exactly one u32 is rejected.
    payload.push_back(0);
    EXPECT_FALSE(decodeOpenRequest(payload, out));
    EXPECT_FALSE(decodeOpenRequest(
        std::span<const std::uint8_t>(payload.data(), 3), out));
}

TEST(NetProtocol, DeadlineExceededRoundTrip)
{
    std::vector<std::uint8_t> payload;
    encodeDeadlineExceeded(payload, 2500);
    std::uint32_t ms = 0;
    ASSERT_TRUE(decodeDeadlineExceeded(payload, ms));
    EXPECT_EQ(ms, 2500u);
    payload.push_back(0);
    EXPECT_FALSE(decodeDeadlineExceeded(payload, ms));
    EXPECT_TRUE(isKnownType(std::uint8_t(FrameType::RespDeadline)));
    EXPECT_FALSE(isRequestType(std::uint8_t(FrameType::RespDeadline)));
}

TEST(NetProtocol, ErrorAndRetryAfterRoundTrip)
{
    ErrorInfo in{ErrorCode::DuplicateStream, "stream 7 already open"};
    std::vector<std::uint8_t> payload;
    encodeError(payload, in);
    ErrorInfo out;
    ASSERT_TRUE(decodeError(payload, out));
    EXPECT_EQ(out.code, in.code);
    EXPECT_EQ(out.message, in.message);

    std::vector<std::uint8_t> ra;
    encodeRetryAfter(ra, 75);
    std::uint32_t millis = 0;
    ASSERT_TRUE(decodeRetryAfter(ra, millis));
    EXPECT_EQ(millis, 75u);
    ra.push_back(0);
    EXPECT_FALSE(decodeRetryAfter(ra, millis));
}

// ---------------------------------------------------------------------------
// FrameReader reassembly.
// ---------------------------------------------------------------------------

TEST(NetProtocol, ReaderYieldsFrameFedByteAtATime)
{
    const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
    const auto wire = frameBytes(FrameType::Push, 42, payload);

    FrameReader reader;
    Frame frame;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        EXPECT_FALSE(reader.next(frame)) << "complete at byte " << i;
        reader.feed(std::span<const std::uint8_t>(&wire[i], 1));
    }
    ASSERT_TRUE(reader.next(frame));
    EXPECT_EQ(frame.type, FrameType::Push);
    EXPECT_EQ(frame.streamId, 42u);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.buffered(), 0u);
    EXPECT_FALSE(reader.malformed());
}

TEST(NetProtocol, ReaderHandlesEverySplitOffset)
{
    const std::vector<std::uint8_t> p1{9, 8, 7};
    const auto f1 = frameBytes(FrameType::Open, 1, {});
    const auto f2 = frameBytes(FrameType::Push, 2, p1);
    std::vector<std::uint8_t> wire = f1;
    wire.insert(wire.end(), f2.begin(), f2.end());

    for (std::size_t split = 0; split <= wire.size(); ++split) {
        FrameReader reader;
        reader.feed(std::span<const std::uint8_t>(wire.data(), split));
        reader.feed(std::span<const std::uint8_t>(
            wire.data() + split, wire.size() - split));
        Frame a, b, extra;
        ASSERT_TRUE(reader.next(a)) << "split " << split;
        ASSERT_TRUE(reader.next(b)) << "split " << split;
        EXPECT_FALSE(reader.next(extra));
        EXPECT_EQ(a.type, FrameType::Open);
        EXPECT_EQ(a.streamId, 1u);
        EXPECT_TRUE(a.payload.empty());
        EXPECT_EQ(b.type, FrameType::Push);
        EXPECT_EQ(b.streamId, 2u);
        EXPECT_EQ(b.payload, p1);
    }
}

TEST(NetProtocol, ReaderPoisonedByUnderLength)
{
    // length = 2 < kFixedBytes: cannot even hold type + streamId.
    std::vector<std::uint8_t> wire;
    putU32(wire, 2);
    wire.push_back(0x01);
    wire.push_back(0x00);

    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.malformed());
    EXPECT_FALSE(reader.error().empty());

    // Poisoned for good: a subsequent valid frame is not parsed.
    const auto good = frameBytes(FrameType::Open, 1, {});
    reader.feed(good);
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.malformed());
}

TEST(NetProtocol, ReaderPoisonedByOversizeLength)
{
    std::vector<std::uint8_t> wire;
    putU32(wire, std::uint32_t(kFixedBytes + kMaxPayload + 1));

    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.malformed());
}

TEST(NetProtocol, ReaderHonoursCustomPayloadBound)
{
    const std::vector<std::uint8_t> payload(64, 0xAB);
    const auto wire = frameBytes(FrameType::Push, 3, payload);

    FrameReader tight(32);
    tight.feed(wire);
    Frame frame;
    EXPECT_FALSE(tight.next(frame));
    EXPECT_TRUE(tight.malformed());

    FrameReader roomy(64);
    roomy.feed(wire);
    ASSERT_TRUE(roomy.next(frame));
    EXPECT_EQ(frame.payload, payload);
}

TEST(NetProtocol, ReaderSurvivesRandomGarbageWithoutCrashing)
{
    // Fuzz-shaped safety net: random bytes either parse as frames or
    // poison the reader; they never crash or loop.
    Rng rng(2026);
    for (unsigned round = 0; round < 50; ++round) {
        FrameReader reader;
        std::vector<std::uint8_t> junk;
        const std::size_t n = 1 + rng.below(400);
        for (std::size_t i = 0; i < n; ++i)
            junk.push_back(std::uint8_t(rng.below(256)));
        reader.feed(junk);
        Frame frame;
        unsigned yielded = 0;
        while (reader.next(frame))
            ++yielded;
        // Parsed frames must at least satisfy the structural bound.
        EXPECT_LE(yielded, n / (kLengthBytes + kFixedBytes) + 1);
    }
}

TEST(NetProtocol, TypePredicatesMatchTheEnum)
{
    EXPECT_TRUE(isRequestType(std::uint8_t(FrameType::Open)));
    EXPECT_TRUE(isRequestType(std::uint8_t(FrameType::Cancel)));
    EXPECT_TRUE(isRequestType(std::uint8_t(FrameType::Stats)));
    EXPECT_FALSE(isRequestType(std::uint8_t(FrameType::RespFinal)));
    EXPECT_FALSE(isRequestType(0x00));
    EXPECT_TRUE(isKnownType(std::uint8_t(FrameType::RespRetryAfter)));
    EXPECT_TRUE(isKnownType(std::uint8_t(FrameType::RespStats)));
    EXPECT_FALSE(isKnownType(0x7F));
}

// ---------------------------------------------------------------------------
// STATS reply.
// ---------------------------------------------------------------------------

TEST(NetProtocol, StatsReplyRoundTrip)
{
    StatsReply in;
    in.utterances = 12345;
    in.audioSeconds = 67.5;
    in.wallSeconds = 89.25;
    in.latencyP50Ms = 10.5;
    in.latencyP99Ms = 99.9;
    in.latencyP999Ms = 250.0;
    in.firstPartialP50Ms = 30.0;
    in.firstPartialP99Ms = 120.0;
    in.firstPartialP999Ms = 480.0;
    in.streamsOpened = 777;
    in.streamsActive = 42;
    in.retryAfterSent = 13;
    in.degradedStreams = 5;
    in.deadlinesExpired = 2;
    in.overloadState = 2;
    std::vector<std::uint8_t> payload;
    encodeStatsReply(payload, in);

    StatsReply out;
    ASSERT_TRUE(decodeStatsReply(payload, out));
    EXPECT_EQ(out.utterances, in.utterances);
    EXPECT_EQ(out.audioSeconds, in.audioSeconds);
    EXPECT_EQ(out.wallSeconds, in.wallSeconds);
    EXPECT_EQ(out.latencyP50Ms, in.latencyP50Ms);
    EXPECT_EQ(out.latencyP99Ms, in.latencyP99Ms);
    EXPECT_EQ(out.latencyP999Ms, in.latencyP999Ms);
    EXPECT_EQ(out.firstPartialP50Ms, in.firstPartialP50Ms);
    EXPECT_EQ(out.firstPartialP99Ms, in.firstPartialP99Ms);
    EXPECT_EQ(out.firstPartialP999Ms, in.firstPartialP999Ms);
    EXPECT_EQ(out.streamsOpened, in.streamsOpened);
    EXPECT_EQ(out.streamsActive, in.streamsActive);
    EXPECT_EQ(out.retryAfterSent, in.retryAfterSent);
    EXPECT_EQ(out.degradedStreams, in.degradedStreams);
    EXPECT_EQ(out.deadlinesExpired, in.deadlinesExpired);
    EXPECT_EQ(out.overloadState, in.overloadState);
}

TEST(NetProtocol, StatsReplyRejectsTruncationAtEveryCut)
{
    StatsReply in;
    in.utterances = 9;
    in.overloadState = 1;
    std::vector<std::uint8_t> payload;
    encodeStatsReply(payload, in);

    // Fixed-size payload in declaration order: the exact-consumption
    // check doubles as the layout/version check, so any cut -- and
    // any stray trailing byte -- must fail loudly.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        StatsReply r;
        EXPECT_FALSE(decodeStatsReply(
            std::span<const std::uint8_t>(payload.data(), cut), r))
            << "cut at " << cut;
    }
    std::vector<std::uint8_t> long_payload = payload;
    long_payload.push_back(0);
    StatsReply r;
    EXPECT_FALSE(decodeStatsReply(long_payload, r));
}

TEST(NetProtocol, StatsReplyRejectsHostileOverloadState)
{
    StatsReply in;
    std::vector<std::uint8_t> payload;
    encodeStatsReply(payload, in);
    // The overload-state byte is the last field; anything past the
    // enum's three values is a hostile or corrupt frame, not a state
    // a decoder should invent semantics for.
    for (const std::uint8_t hostile : {3, 7, 255}) {
        payload.back() = hostile;
        StatsReply r;
        EXPECT_FALSE(decodeStatsReply(payload, r))
            << unsigned(hostile);
    }
    payload.back() = 1;
    StatsReply r;
    EXPECT_TRUE(decodeStatsReply(payload, r));
    EXPECT_EQ(r.overloadState, 1);
}
