/**
 * @file
 * Tests for the set-associative cache tag model, including a
 * property-based comparison against a simple reference model over
 * randomized access streams.
 */

#include <list>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/cache.hh"

using namespace asr;
using namespace asr::sim;

namespace {

/**
 * Reference model: per-set LRU lists implemented the obvious slow
 * way with std::list, used to validate the production tag array.
 */
class ReferenceCache
{
  public:
    ReferenceCache(Bytes size, unsigned assoc, Bytes line)
        : assoc_(assoc), line_(line),
          sets_(unsigned(size / (line * assoc)))
    {
        lru.resize(sets_);
    }

    bool
    access(Addr addr)
    {
        const Addr tag = addr / line_;
        auto &set = lru[unsigned(tag % sets_)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return true;
            }
        }
        set.push_front(tag);
        if (set.size() > assoc_)
            set.pop_back();
        return false;
    }

  private:
    unsigned assoc_;
    Bytes line_;
    unsigned sets_;
    std::vector<std::list<Addr>> lru;
};

} // namespace

TEST(Cache, BasicHitMiss)
{
    Cache c(CacheConfig{"t", 1024, 2, 64, false});
    EXPECT_FALSE(c.access(0, false).hit);    // cold miss
    EXPECT_TRUE(c.access(0, false).hit);     // now resident
    EXPECT_TRUE(c.access(63, false).hit);    // same line
    EXPECT_FALSE(c.access(64, false).hit);   // next line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2 sets x 2 ways x 64 B = 256 B; lines 0,2,4 map to set 0.
    Cache c(CacheConfig{"t", 256, 2, 64, false});
    c.access(0 * 64, false);
    c.access(2 * 64, false);
    c.access(0 * 64, false);      // line 0 most recent
    c.access(4 * 64, false);      // evicts line 2 (LRU)
    EXPECT_TRUE(c.access(0 * 64, false).hit);
    EXPECT_FALSE(c.access(2 * 64, false).hit);
}

TEST(Cache, DirtyWriteback)
{
    Cache c(CacheConfig{"t", 128, 1, 64, false});  // 2 sets, direct
    c.access(0, true);                             // dirty line 0
    const auto res = c.access(128, false);         // same set, evict
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);

    // Clean eviction produces no writeback.
    const auto res2 = c.access(0, false);
    EXPECT_FALSE(res2.hit);
    EXPECT_FALSE(res2.writeback);
}

TEST(Cache, PerfectModeAlwaysHits)
{
    Cache c(CacheConfig{"t", 256, 2, 64, true});
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(c.access(rng.next() & 0xffffff, false).hit);
    EXPECT_EQ(c.stats().misses, 0u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.0);
}

TEST(Cache, InvalidateAllDropsContents)
{
    Cache c(CacheConfig{"t", 1024, 2, 64, false});
    c.access(0, false);
    ASSERT_TRUE(c.access(0, false).hit);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, ProbeDoesNotDisturbLru)
{
    Cache c(CacheConfig{"t", 128, 2, 64, false});  // 1 set, 2 ways
    c.access(0, false);
    c.access(64, false);
    // Probing line 0 must NOT refresh it; line 0 stays LRU.
    EXPECT_TRUE(c.probe(0));
    c.access(128, false);  // evicts line 0
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(64));
}

/** Property: production model == reference model on random streams. */
struct CacheShape
{
    Bytes size;
    unsigned assoc;
    std::uint64_t seed;
};

class CacheVsReference : public ::testing::TestWithParam<CacheShape>
{
};

TEST_P(CacheVsReference, IdenticalHitMissSequence)
{
    const CacheShape &p = GetParam();
    Cache dut(CacheConfig{"t", p.size, p.assoc, 64, false});
    ReferenceCache ref(p.size, p.assoc, 64);
    Rng rng(p.seed);

    for (int i = 0; i < 20000; ++i) {
        // Mix of clustered and far addresses exercises all sets.
        Addr addr = rng.bernoulli(0.5)
                        ? rng.below(p.size * 2)
                        : rng.below(1_MiB * 64);
        const bool dut_hit = dut.access(addr, false).hit;
        const bool ref_hit = ref.access(addr);
        ASSERT_EQ(dut_hit, ref_hit) << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheVsReference,
    ::testing::Values(CacheShape{1024, 1, 1}, CacheShape{1024, 2, 2},
                      CacheShape{4096, 4, 3}, CacheShape{8192, 2, 4},
                      CacheShape{64_KiB, 4, 5},
                      CacheShape{64_KiB, 8, 6},
                      CacheShape{512_KiB, 4, 7},
                      CacheShape{1_MiB, 4, 8}));

TEST(Cache, MissRatioDecreasesWithCapacity)
{
    // The Figure-4 property: bigger caches miss less on the same
    // stream (with everything else fixed).
    std::vector<double> ratios;
    for (Bytes size : {16_KiB, 64_KiB, 256_KiB}) {
        Cache c(CacheConfig{"t", size, 4, 64, false});
        Rng rng(99);
        for (int i = 0; i < 50000; ++i)
            c.access(rng.below(512_KiB), false);
        ratios.push_back(c.stats().missRatio());
    }
    EXPECT_GT(ratios[0], ratios[1]);
    EXPECT_GT(ratios[1], ratios[2]);
}
