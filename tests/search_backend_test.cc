/**
 * @file
 * Tests for the search::Backend registry: the built-ins resolve by
 * name and decode exactly like the bare classes they wrap, unknown
 * names are rejected with a diagnostic that lists the registered
 * backends, and user-registered factories participate like the
 * built-ins.  (The dense bit-identity sweep against the pre-refactor
 * classes lives in equivalence_property_test.cc.)
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acoustic/scorer.hh"
#include "common/logging.hh"
#include "search/backend.hh"
#include "wfst/generate.hh"

using namespace asr;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

wfst::Wfst
testNet()
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 200;
    gcfg.numPhonemes = 16;
    gcfg.numWords = 30;
    gcfg.seed = 99;
    return wfst::generateWfst(gcfg);
}

acoustic::AcousticLikelihoods
testScores(std::size_t frames = 14)
{
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 16;
    scfg.seed = 5;
    return acoustic::SyntheticScorer(scfg).generate(frames);
}

} // namespace

TEST(SearchRegistry, BuiltinsAreRegistered)
{
    for (const char *name : {"viterbi", "baseline", "accel"})
        EXPECT_TRUE(search::isBackendRegistered(name)) << name;
    const auto names = search::registeredBackendNames();
    EXPECT_GE(names.size(), 3u);
    // Sorted and duplicate-free: the diagnostics depend on it.
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]);
}

TEST(SearchRegistry, UnknownNameIsRejectedListingRegistered)
{
    const wfst::Wfst net = testNet();
    search::BackendConfig cfg;
    EXPECT_EQ(search::tryCreateBackend("gpu-warp", net, cfg),
              nullptr);
    EXPECT_FALSE(search::isBackendRegistered("gpu-warp"));

    const std::string msg = search::unknownBackendMessage("gpu-warp");
    EXPECT_NE(msg.find("gpu-warp"), std::string::npos);
    // Every registered backend must be listed so a typo shows the
    // valid choices.
    for (const std::string &name : search::registeredBackendNames())
        EXPECT_NE(msg.find(name), std::string::npos) << name;
}

TEST(SearchRegistry, CreateByNameReportsThatName)
{
    const wfst::Wfst net = testNet();
    search::BackendConfig cfg;
    cfg.decoder.beam = 8.0f;
    for (const char *name : {"viterbi", "baseline", "accel"}) {
        const auto backend = search::createBackend(name, net, cfg);
        ASSERT_NE(backend, nullptr) << name;
        EXPECT_EQ(backend->name(), name);
    }
}

TEST(SearchRegistry, StreamingShapeDecodesLikeBatchHelper)
{
    // Backend::decode is definitionally the streaming sequence; a
    // hand-rolled streaming drive must land on the same result.
    const wfst::Wfst net = testNet();
    const auto scores = testScores();
    search::BackendConfig cfg;
    cfg.decoder.beam = 8.0f;

    for (const char *name : {"viterbi", "baseline", "accel"}) {
        const auto batch = search::createBackend(name, net, cfg);
        const auto r_batch = batch->decode(scores);

        const auto streamed = search::createBackend(name, net, cfg);
        streamed->streamBegin();
        for (std::size_t f = 0; f < scores.numFrames(); ++f) {
            streamed->streamFrame(scores.frame(f));
            // Partial hypotheses must be available mid-stream.
            (void)streamed->streamPartial();
        }
        const auto r_stream = streamed->streamFinish();

        EXPECT_EQ(r_stream.words, r_batch.words) << name;
        EXPECT_EQ(r_stream.score, r_batch.score) << name;
    }
}

TEST(SearchRegistry, AccelStatsOnlyFromTheAccel)
{
    const wfst::Wfst net = testNet();
    const auto scores = testScores(6);
    search::BackendConfig cfg;
    cfg.decoder.beam = 8.0f;
    cfg.runTiming = true;

    accel::AccelStats stats;
    const auto sw = search::createBackend("viterbi", net, cfg);
    (void)sw->decode(scores);
    EXPECT_FALSE(sw->accelStats(stats));

    const auto hw = search::createBackend("accel", net, cfg);
    (void)hw->decode(scores);
    ASSERT_TRUE(hw->accelStats(stats));
    EXPECT_GT(stats.frames, 0u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(SearchRegistry, RunTimingCannotChangeResults)
{
    const wfst::Wfst net = testNet();
    const auto scores = testScores();
    search::BackendConfig timed;
    timed.decoder.beam = 8.0f;
    timed.runTiming = true;
    search::BackendConfig functional = timed;
    functional.runTiming = false;

    const auto r_timed =
        search::createBackend("accel", net, timed)->decode(scores);
    const auto r_func =
        search::createBackend("accel", net, functional)
            ->decode(scores);
    EXPECT_EQ(r_timed.words, r_func.words);
    EXPECT_EQ(r_timed.score, r_func.score);
}

TEST(SearchRegistry, UserRegisteredBackendParticipates)
{
    // A downstream registration is creatable by name, shows up in
    // the listing, and re-registration replaces the factory.
    const wfst::Wfst net = testNet();
    const auto scores = testScores(8);

    search::registerBackend(
        "test-alias-viterbi",
        [](const wfst::Wfst &n, const search::BackendConfig &c) {
            return search::createBackend("viterbi", n, c);
        });
    EXPECT_TRUE(search::isBackendRegistered("test-alias-viterbi"));

    search::BackendConfig cfg;
    cfg.decoder.beam = 8.0f;
    const auto alias =
        search::createBackend("test-alias-viterbi", net, cfg);
    const auto direct = search::createBackend("viterbi", net, cfg);
    const auto r_alias = alias->decode(scores);
    const auto r_direct = direct->decode(scores);
    EXPECT_EQ(r_alias.words, r_direct.words);
    EXPECT_EQ(r_alias.score, r_direct.score);

    const std::string msg = search::unknownBackendMessage("nope");
    EXPECT_NE(msg.find("test-alias-viterbi"), std::string::npos);
}
