/**
 * @file
 * Edge cases both decoders must handle gracefully: empty acoustic
 * input, searches that die entirely, unscored phonemes, degenerate
 * graphs, and a starved memory system (failure injection into the
 * timing model).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "wfst/generate.hh"

using namespace asr;

namespace {

/** 0 -a-> 1 -b-> 2 linear chain. */
wfst::Wfst
chainNet()
{
    wfst::WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1, 7);
    b.addArc(1, 2, -0.1f, 2, 8);
    return b.build();
}

} // namespace

TEST(DecoderEdge, SearchDiesWhenAllPhonemesUnscored)
{
    // Frame 2 scores only phoneme 1, but state 1's only arc needs
    // phoneme 2: every candidate is log-zero and the search dies.
    const wfst::Wfst net = chainNet();
    acoustic::AcousticLikelihoods scores(2, 2);
    scores.frame(0)[1] = -0.5f;
    // frame 1 left entirely at kLogZero

    decoder::DecoderConfig cfg;
    cfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(net, cfg);
    const auto r = dec.decode(scores);
    EXPECT_TRUE(r.words.empty());
    EXPECT_EQ(r.bestState, wfst::kNoState);
    EXPECT_LE(r.score, wfst::kLogZero);

    accel::AcceleratorConfig acfg;
    acfg.beam = 10.0f;
    accel::Accelerator acc(net, acfg);
    const auto h = acc.decode(scores);
    EXPECT_TRUE(h.words.empty());
    EXPECT_EQ(h.bestState, wfst::kNoState);
}

TEST(DecoderEdge, DeadEndGraphTerminates)
{
    // State 2 has no outgoing arcs: the search runs out of work
    // before the scores run out and must still terminate cleanly.
    const wfst::Wfst net = chainNet();
    acoustic::AcousticLikelihoods scores(5, 2);
    for (std::size_t f = 0; f < 5; ++f) {
        scores.frame(f)[1] = -0.5f;
        scores.frame(f)[2] = -0.5f;
    }
    decoder::DecoderConfig cfg;
    cfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(net, cfg);
    const auto r = dec.decode(scores);
    EXPECT_EQ(r.bestState, wfst::kNoState);

    accel::AcceleratorConfig acfg;
    acfg.beam = 10.0f;
    accel::Accelerator acc(net, acfg);
    const auto h = acc.decode(scores);
    EXPECT_EQ(h.bestState, wfst::kNoState);
    EXPECT_EQ(acc.stats().frames, 5u);
}

TEST(DecoderEdge, SelfLoopOnlyStatePersists)
{
    // A hand-built absorbing state: the token just dwells there.
    wfst::WfstBuilder b(2);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(1, 1, -0.2f, 2);
    const wfst::Wfst net = b.build();

    acoustic::AcousticLikelihoods scores(4, 2);
    for (std::size_t f = 0; f < 4; ++f) {
        scores.frame(f)[1] = -0.3f;
        scores.frame(f)[2] = -0.3f;
    }
    decoder::DecoderConfig cfg;
    cfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(net, cfg);
    const auto r = dec.decode(scores);
    EXPECT_EQ(r.bestState, 1u);
    EXPECT_NEAR(r.score, -0.1f - 0.3f + 3 * (-0.2f - 0.3f), 1e-5f);
}

TEST(DecoderEdge, SingleFrameDecode)
{
    const wfst::Wfst net = chainNet();
    acoustic::AcousticLikelihoods scores(1, 2);
    scores.frame(0)[1] = -0.4f;
    scores.frame(0)[2] = -9.0f;
    decoder::DecoderConfig cfg;
    cfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(net, cfg);
    const auto r = dec.decode(scores);
    EXPECT_EQ(r.bestState, 1u);
    ASSERT_EQ(r.words.size(), 1u);
    EXPECT_EQ(r.words[0], 7u);
}

TEST(DecoderEdge, StarvedMemoryControllerStillCompletes)
{
    // Failure injection: a memory controller with a single in-flight
    // slot and high latency.  The pipeline crawls but must finish
    // with identical results.
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 2000;
    gcfg.numPhonemes = 32;
    gcfg.seed = 66;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 32;
    scfg.seed = 4;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(6);

    accel::AcceleratorConfig healthy;
    healthy.beam = 6.0f;
    accel::Accelerator acc_ok(net, healthy);
    const auto r_ok = acc_ok.decode(scores);

    accel::AcceleratorConfig starved = healthy;
    starved.dram.maxInflight = 1;
    starved.dram.latency = 200;
    starved.stateCache.size = 8_KiB;
    starved.arcCache.size = 8_KiB;
    starved.tokenCache.size = 8_KiB;
    accel::Accelerator acc_bad(net, starved);
    const auto r_bad = acc_bad.decode(scores);

    EXPECT_EQ(r_bad.words, r_ok.words);
    EXPECT_FLOAT_EQ(r_bad.score, r_ok.score);
    EXPECT_GT(acc_bad.stats().cycles, acc_ok.stats().cycles * 2);
}

TEST(DecoderEdge, TinyHashWithTinyBackupStillCorrect)
{
    // Overflow-buffer stress: almost every token spills off chip.
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 3000;
    gcfg.numPhonemes = 32;
    gcfg.seed = 67;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 32;
    scfg.seed = 5;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(6);

    accel::AcceleratorConfig cfg;
    cfg.beam = 6.0f;
    cfg.hashEntries = 16;
    cfg.hashBackupEntries = 8;
    accel::Accelerator acc(net, cfg);
    const auto r = acc.decode(scores);
    EXPECT_GT(acc.stats().hash.overflowHops, 0u);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 6.0f;
    decoder::ViterbiDecoder sw(net, dcfg);
    const auto r_sw = sw.decode(scores);
    EXPECT_EQ(r.words, r_sw.words);
    EXPECT_NEAR(r.score, r_sw.score, 1e-3f);
}

TEST(DecoderEdge, ZeroFrameAcceleratorDecode)
{
    const wfst::Wfst net = chainNet();
    accel::AcceleratorConfig cfg;
    cfg.beam = 10.0f;
    accel::Accelerator acc(net, cfg);
    const auto r = acc.decode(acoustic::AcousticLikelihoods(0, 2));
    EXPECT_TRUE(r.words.empty());
    EXPECT_EQ(r.bestState, net.initialState());
    EXPECT_EQ(acc.stats().frames, 0u);
}
