/**
 * @file
 * Concurrency stress for the decode engine, designed to give TSan /
 * ASan / UBSan something to chew on: many short utterances racing
 * through more workers than cores, overlapping submit/drain/stats
 * calls from the driver thread, and both search backends.  The
 * assertions are deliberately light -- the point is to execute the
 * synchronized paths (queue, condvars, EngineStats, shared model
 * reads) under maximum interleaving, with correctness itself pinned
 * by server_test's bit-identity checks.
 */

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pipeline/model.hh"
#include "server/scheduler.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::server;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 6;

struct SmallWorld
{
    wfst::Wfst net;
    pipeline::AsrModel model;

    SmallWorld()
        : net(makeNet()), model(net, modelConfig())
    {
    }

    static wfst::Wfst
    makeNet()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 120;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 20;
        gcfg.seed = 4711;
        return wfst::generateWfst(gcfg);
    }

    static pipeline::AsrSystemConfig
    modelConfig()
    {
        pipeline::AsrSystemConfig cfg;
        cfg.numPhonemes = kPhonemes;
        cfg.hiddenLayers = {24};
        cfg.trainUtterPerPhoneme = 6;
        cfg.trainEpochs = 6;
        cfg.beam = 12.0f;
        cfg.seed = 77;
        return cfg;
    }
};

SmallWorld &
world()
{
    static SmallWorld w;
    return w;
}

frontend::AudioSignal
audioFor(std::uint64_t seed)
{
    Rng rng(deriveSeed(1234, seed));
    std::vector<std::uint32_t> seq;
    const unsigned phones = 2 + unsigned(rng.below(3));
    for (unsigned i = 0; i < phones; ++i)
        seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
    return world().model.synthesizer().synthesize(seq, 2);
}

} // namespace

TEST(ServerStress, ManySessionsManyWorkers)
{
    SchedulerConfig cfg;
    cfg.numThreads = 8;  // deliberately more than the core count
    cfg.baseSeed = 5;
    cfg.ditherAmplitude = 1e-4f;
    DecodeScheduler engine(world().model, cfg);

    constexpr unsigned kJobs = 48;
    std::vector<std::future<pipeline::RecognitionResult>> futures;
    futures.reserve(kJobs);
    for (unsigned u = 0; u < kJobs; ++u) {
        futures.push_back(engine.submit(audioFor(u)));
        // Interleave stats polling with submissions to race the
        // EngineStats mutex against the workers.
        if (u % 7 == 0)
            (void)engine.stats();
    }

    for (auto &f : futures) {
        const auto r = f.get();
        EXPECT_GE(r.audioSeconds, 0.0);
    }
    engine.drain();
    EXPECT_EQ(engine.stats().utterances, kJobs);
}

TEST(ServerStress, RepeatedDrainCycles)
{
    SchedulerConfig cfg;
    cfg.numThreads = 4;
    DecodeScheduler engine(world().model, cfg);

    unsigned total = 0;
    for (unsigned round = 0; round < 5; ++round) {
        const unsigned batch = 1 + round;
        for (unsigned u = 0; u < batch; ++u)
            (void)engine.submit(audioFor(100 + round * 10 + u));
        total += batch;
        engine.drain();
        EXPECT_EQ(engine.stats().utterances, total);
    }
}

TEST(ServerStress, AcceleratorBackendUnderConcurrency)
{
    // Each session owns a full cycle-level accelerator model; run a
    // few concurrently to stress its (session-private) state under
    // parallel construction/teardown.
    SchedulerConfig cfg;
    cfg.numThreads = 4;
    cfg.useAccelerator = true;
    cfg.runTiming = true;
    DecodeScheduler engine(world().model, cfg);

    std::vector<std::future<pipeline::RecognitionResult>> futures;
    for (unsigned u = 0; u < 8; ++u)
        futures.push_back(engine.submit(audioFor(300 + u)));
    for (auto &f : futures) {
        const auto r = f.get();
        EXPECT_GT(r.accelStats.frames, 0u);
    }
}

TEST(ServerStress, DestructorDrainsOutstandingWork)
{
    std::vector<std::future<pipeline::RecognitionResult>> futures;
    {
        SchedulerConfig cfg;
        cfg.numThreads = 3;
        DecodeScheduler engine(world().model, cfg);
        for (unsigned u = 0; u < 6; ++u)
            futures.push_back(engine.submit(audioFor(500 + u)));
        // Destructor must finish the queue before joining.
    }
    for (auto &f : futures)
        EXPECT_GE(f.get().audioSeconds, 0.0);
}
