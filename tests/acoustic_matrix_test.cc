/**
 * @file
 * Tests for the dense matrix kernels behind the DNN.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "acoustic/matrix.hh"

using namespace asr::acoustic;

TEST(Matrix, ShapeAndAccess)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);  // zero initialized
    EXPECT_EQ(m.row(1).size(), 3u);
    EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, Matmul)
{
    Matrix a(2, 3), b(3, 2);
    // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data().begin());
    std::copy(bv, bv + 6, b.data().begin());
    const Matrix c = matmul(a, b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatmulTransposedAgreesWithMatmul)
{
    Matrix a(3, 4), bt(5, 4), b(4, 5);
    for (std::size_t i = 0; i < a.data().size(); ++i)
        a.data()[i] = float(i) * 0.25f - 1.0f;
    for (std::size_t i = 0; i < bt.data().size(); ++i)
        bt.data()[i] = float(i % 7) - 3.0f;
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            b.at(c, r) = bt.at(r, c);

    const Matrix x = matmulTransposed(a, bt);
    const Matrix y = matmul(a, b);
    ASSERT_EQ(x.rows(), y.rows());
    ASSERT_EQ(x.cols(), y.cols());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            ASSERT_NEAR(x.at(r, c), y.at(r, c), 1e-5);
}

TEST(Matrix, AddRowBias)
{
    Matrix m(2, 2);
    std::vector<float> bias{1.0f, -2.0f};
    addRowBias(m, bias);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), -2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), -2.0f);
}

TEST(Matrix, ReluClampsNegatives)
{
    Matrix m(1, 4);
    float v[] = {-1.0f, 0.0f, 2.0f, -0.5f};
    std::copy(v, v + 4, m.data().begin());
    reluInPlace(m);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 3), 0.0f);
}

TEST(Matrix, LogSoftmaxRowsNormalized)
{
    Matrix m(2, 5);
    for (std::size_t c = 0; c < 5; ++c) {
        m.at(0, c) = float(c);
        m.at(1, c) = 100.0f + float(c);  // large values: stability
    }
    logSoftmaxRows(m);
    for (std::size_t r = 0; r < 2; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 5; ++c) {
            ASSERT_LE(m.at(r, c), 0.0f);
            sum += std::exp(double(m.at(r, c)));
        }
        ASSERT_NEAR(sum, 1.0, 1e-5);
    }
    // Order is preserved: higher logits stay higher.
    EXPECT_GT(m.at(0, 4), m.at(0, 0));
}

TEST(Matrix, LogSoftmaxUniformRow)
{
    Matrix m(1, 4);
    logSoftmaxRows(m);
    for (std::size_t c = 0; c < 4; ++c)
        ASSERT_NEAR(m.at(0, c), std::log(0.25), 1e-6);
}
