/**
 * @file
 * Link-level sanity check: touches one symbol *defined in a .cc file*
 * of every src/ library, so a CMake change that drops a library or a
 * dependency edge fails at link time instead of silently shipping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/config.hh"
#include "acoustic/dnn.hh"
#include "api/options.hh"
#include "common/logging.hh"
#include "decoder/wer.hh"
#include "fleet/loadgen.hh"
#include "frontend/fft.hh"
#include "gpu/platforms.hh"
#include "net/protocol.hh"
#include "pipeline/system.hh"
#include "power/energy_model.hh"
#include "search/backend.hh"
#include "server/engine_stats.hh"
#include "sim/stats.hh"
#include "wfst/examples.hh"

TEST(BuildSanity, CommonLogging)
{
    const bool was = asr::quiet();
    asr::setQuiet(true);
    EXPECT_TRUE(asr::quiet());
    asr::setQuiet(was);
}

TEST(BuildSanity, FrontendFft)
{
    const std::vector<double> frame(8, 1.0);
    const auto spectrum = asr::frontend::powerSpectrum(frame, 8);
    ASSERT_EQ(spectrum.size(), 5u);
    EXPECT_NEAR(spectrum[0], 64.0, 1e-9);
}

TEST(BuildSanity, WfstFigure2)
{
    const auto example = asr::wfst::buildFigure2Example();
    EXPECT_GT(example.wfst.numStates(), 0u);
    EXPECT_GT(example.wfst.numArcs(), 0u);
}

TEST(BuildSanity, AcousticDnn)
{
    asr::acoustic::DnnConfig cfg;
    cfg.inputDim = 4;
    cfg.hidden = {8};
    cfg.outputDim = 4;
    const asr::acoustic::Dnn dnn(cfg);
    EXPECT_EQ(dnn.config().inputDim, 4u);
}

TEST(BuildSanity, SimHistogram)
{
    asr::sim::Histogram hist(1.0, 8);
    hist.sample(2.0);
    hist.sample(4.0);
    EXPECT_EQ(hist.count(), 2u);
    EXPECT_NEAR(hist.mean(), 3.0, 1e-9);
}

TEST(BuildSanity, DecoderWer)
{
    const std::vector<asr::wfst::WordId> reference{1, 2, 3};
    const std::vector<asr::wfst::WordId> hypothesis{1, 2, 3};
    const auto result = asr::decoder::scoreWer(reference, hypothesis);
    EXPECT_EQ(result.errors(), 0u);
    EXPECT_NEAR(result.wer(), 0.0, 1e-9);
}

TEST(BuildSanity, AccelConfig)
{
    const auto cfg = asr::accel::AcceleratorConfig::baseline();
    EXPECT_GT(cfg.frequencyHz, 0.0);
}

TEST(BuildSanity, PowerSram)
{
    const auto figures = asr::power::sramFigures(asr::Bytes(64) * 1024, 4);
    EXPECT_GT(figures.readEnergyJ, 0.0);
    EXPECT_GT(figures.areaMm2, 0.0);
}

TEST(BuildSanity, GpuModels)
{
    asr::gpu::Workload workload;
    workload.frames = 100;
    workload.arcsProcessed = 10000;
    workload.tokensProcessed = 1000;
    workload.dnnMacsPerFrame = 1000000;
    const asr::gpu::GpuModel gpu;
    const asr::gpu::CpuModel cpu;
    EXPECT_GT(gpu.dnnSeconds(workload), 0.0);
    EXPECT_GT(cpu.dnnSeconds(workload), 0.0);
}

TEST(BuildSanity, ServerEngineStats)
{
    asr::server::EngineStats stats;
    stats.recordUtterance(1.0, 0.25, 0.30);
    const auto snap = stats.snapshot(2.0);
    EXPECT_EQ(snap.utterances, 1u);
    EXPECT_NEAR(snap.aggregateRtf(), 0.25, 1e-9);
    EXPECT_NEAR(snap.utterancesPerSecond(), 0.5, 1e-9);
}

TEST(BuildSanity, FleetArrivals)
{
    asr::fleet::ArrivalConfig cfg;
    cfg.ratePerSec = 100.0;
    asr::fleet::ArrivalProcess arrivals(cfg);
    const double first = arrivals.next();
    EXPECT_GT(first, 0.0);
    EXPECT_GT(arrivals.next(), first);
}

TEST(BuildSanity, SearchRegistry)
{
    const auto names = asr::search::registeredBackendNames();
    EXPECT_GE(names.size(), 3u);
    EXPECT_TRUE(asr::search::isBackendRegistered("viterbi"));
}

TEST(BuildSanity, ApiEngineOptions)
{
    asr::api::EngineOptions opts;
    EXPECT_TRUE(opts.validate().empty());
    opts.searchBackend = "no-such-backend";
    EXPECT_FALSE(opts.validate().empty());
}

TEST(BuildSanity, NetProtocol)
{
    std::vector<std::uint8_t> wire;
    asr::net::appendFrame(wire, asr::net::FrameType::Open, 7, {});
    asr::net::FrameReader reader;
    reader.feed(wire);
    asr::net::Frame frame;
    ASSERT_TRUE(reader.next(frame));
    EXPECT_EQ(frame.streamId, 7u);
}

TEST(BuildSanity, PipelineSystemModel)
{
    asr::pipeline::SystemModelInput in;
    in.numBatches = 4;
    in.dnnSecondsPerBatch = 0.5;
    in.viterbiSecondsPerBatch = 0.25;
    const auto sequential = asr::pipeline::modelSystem(in);
    in.pipelined = true;
    const auto pipelined = asr::pipeline::modelSystem(in);
    EXPECT_GT(sequential.seconds, 0.0);
    EXPECT_LE(pipelined.seconds, sequential.seconds);
}
