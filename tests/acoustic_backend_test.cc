/**
 * @file
 * Backend equivalence tests: the blocked float backend must reproduce
 * the reference bit-for-bit across shapes (including tile-tail
 * dimensions and context-splice edge frames), the streaming-frame
 * entry point must equal the corresponding batch row on every
 * backend, and the int8 backend must stay within bounded score error
 * of the float paths.
 *
 * The AVX2 variants have their own contracts: int8-avx2 must be
 * bit-identical to scalar int8 (integer addition is associative);
 * blocked-avx2 trades bitwise identity for an FMA error bound when
 * SIMD is active, and must degrade to the bit-identical scalar
 * kernel when AVX2 is unavailable (exercised via the test override).
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "acoustic/backend.hh"
#include "acoustic/scorer.hh"
#include "common/cpuinfo.hh"
#include "common/rng.hh"

using namespace asr;
using namespace asr::acoustic;

namespace {

Dnn
makeNet(std::size_t input, std::vector<std::size_t> hidden,
        std::size_t output, std::uint64_t seed)
{
    DnnConfig cfg;
    cfg.inputDim = input;
    cfg.hidden = std::move(hidden);
    cfg.outputDim = output;
    cfg.seed = seed;
    return Dnn(cfg);
}

Matrix
randomInput(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Matrix m(rows, cols);
    Rng rng(seed);
    for (float &v : m.data())
        v = float(rng.uniform(-2.0, 2.0));
    return m;
}

/** Exact float equality, element by element. */
void
expectBitIdentical(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(a.at(r, c), b.at(r, c))
                << "mismatch at (" << r << ", " << c << ")";
}

} // namespace

TEST(BackendNames, RoundTrip)
{
    for (auto kind :
         {BackendKind::Reference, BackendKind::Blocked,
          BackendKind::BlockedAvx2, BackendKind::Int8,
          BackendKind::Int8Avx2})
        EXPECT_EQ(backendKindFromName(backendName(kind)), kind);
    EXPECT_EQ(backendKindFromName("blocked"), BackendKind::Blocked);
    EXPECT_EQ(backendKindFromName("blocked-avx2"),
              BackendKind::BlockedAvx2);
    EXPECT_EQ(backendKindFromName("int8-avx2"),
              BackendKind::Int8Avx2);
}

TEST(BackendEquivalence, BlockedMatchesReferenceBitExact)
{
    // Shapes chosen to exercise the packed layout's tails: output
    // dims below one tile, exactly one tile, and off-tile remainders;
    // odd input dims; one and two hidden layers.
    struct Shape
    {
        std::size_t in;
        std::vector<std::size_t> hidden;
        std::size_t out;
    };
    const Shape shapes[] = {
        {5, {7}, 3},       // everything smaller than a tile
        {16, {16}, 8},     // exact tile multiples
        {33, {17, 9}, 13}, // off-tile everywhere, two hidden layers
        {65, {96, 96}, 24},// the demo model's shape
        {13, {}, 5},       // no hidden layer at all
    };
    std::uint64_t seed = 1;
    for (const Shape &s : shapes) {
        const Dnn net = makeNet(s.in, s.hidden, s.out, 1000 + seed);
        const auto ref = Backend::create(BackendKind::Reference, net);
        const auto blk = Backend::create(BackendKind::Blocked, net);
        for (std::size_t batch : {1u, 2u, 3u, 17u, 64u}) {
            const Matrix input = randomInput(batch, s.in, seed++);
            expectBitIdentical(ref->scoreBatch(input),
                               blk->scoreBatch(input));
        }
    }
}

TEST(BackendEquivalence, ScoreFrameMatchesBatchRow)
{
    const Dnn net = makeNet(21, {19, 11}, 9, 77);
    const Matrix input = randomInput(6, 21, 5);
    for (auto kind :
         {BackendKind::Reference, BackendKind::Blocked,
          BackendKind::BlockedAvx2, BackendKind::Int8,
          BackendKind::Int8Avx2}) {
        const auto backend = Backend::create(kind, net);
        const Matrix batch = backend->scoreBatch(input);
        FrameScratch scratch;
        std::vector<float> out(backend->outputDim());
        for (std::size_t r = 0; r < input.rows(); ++r) {
            backend->scoreFrame(input.row(r), out, scratch);
            for (std::size_t c = 0; c < out.size(); ++c)
                ASSERT_EQ(out[c], batch.at(r, c))
                    << backendName(kind) << " row " << r << " col "
                    << c;
        }
    }
}

TEST(BackendEquivalence, DnnScorerAgreesAcrossBackendsOnEdgeFrames)
{
    // Context splicing replicates edge frames; utterances shorter
    // than the splice window are all edge.  The scorer must produce
    // bit-identical likelihoods through reference and blocked for
    // every length, including 1- and 2-frame utterances.
    const unsigned ctx = 2;
    const std::size_t dim = 13;
    const Dnn net = makeNet((2 * ctx + 1) * dim, {24}, 10, 31);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto blk = Backend::create(BackendKind::Blocked, net);
    const DnnScorer refScorer(*ref, ctx);
    const DnnScorer blkScorer(*blk, ctx);

    Rng rng(9);
    for (std::size_t frames : {1u, 2u, 3u, 5u, 8u, 40u}) {
        frontend::FeatureMatrix feats(frames,
                                      std::vector<float>(dim));
        for (auto &row : feats)
            for (float &v : row)
                v = float(rng.uniform(-1.0, 1.0));
        const auto a = refScorer.score(feats);
        const auto b = blkScorer.score(feats);
        ASSERT_EQ(a.numFrames(), frames);
        ASSERT_EQ(b.numFrames(), frames);
        for (std::size_t f = 0; f < frames; ++f)
            for (std::uint32_t p = 0; p <= a.numPhonemes(); ++p)
                ASSERT_EQ(a.score(f, p), b.score(f, p))
                    << frames << "-frame utterance, frame " << f
                    << ", phoneme " << p;
    }
}

TEST(BackendEquivalence, Int8ScoreErrorBounded)
{
    const Dnn net = makeNet(65, {96, 96}, 24, 4242);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto q = Backend::create(BackendKind::Int8, net);
    const Matrix input = randomInput(64, 65, 123);
    const Matrix a = ref->scoreBatch(input);
    const Matrix b = q->scoreBatch(input);
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());

    float maxErr = 0.0f;
    std::size_t argmaxAgree = 0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        std::size_t ba = 0, bb = 0;
        for (std::size_t c = 0; c < a.cols(); ++c) {
            maxErr = std::max(maxErr,
                              std::abs(a.at(r, c) - b.at(r, c)));
            if (a.at(r, c) > a.at(r, ba))
                ba = c;
            if (b.at(r, c) > b.at(r, bb))
                bb = c;
        }
        if (ba == bb)
            ++argmaxAgree;
    }
    // 8-bit symmetric quantization of a 2-hidden-layer net keeps the
    // log-softmax scores within a fraction of a log unit; anything
    // larger indicates a broken scale chain.
    EXPECT_LT(maxErr, 0.5f);
    EXPECT_GE(argmaxAgree, (a.rows() * 9) / 10)
        << "int8 disagreed on the best senone too often";
}

TEST(BackendCostModel, MacsAndWeightBytes)
{
    const Dnn net = makeNet(10, {20}, 30, 3);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto blk = Backend::create(BackendKind::Blocked, net);
    const auto q = Backend::create(BackendKind::Int8, net);

    const std::uint64_t macs = 10 * 20 + 20 * 30;
    EXPECT_EQ(ref->macsPerFrame(), macs);
    EXPECT_EQ(blk->macsPerFrame(), macs);
    EXPECT_EQ(q->macsPerFrame(), macs);

    // Float: 4 bytes per weight + 4 per bias entry.
    const std::uint64_t floatBytes =
        (10 * 20 + 20 * 30) * 4 + (20 + 30) * 4;
    EXPECT_EQ(ref->weightBytesPerFrame(), floatBytes);
    EXPECT_EQ(blk->weightBytesPerFrame(), floatBytes);
    // Int8: 1 byte per weight + per-channel scale + bias.
    const std::uint64_t int8Bytes =
        (10 * 20 + 20 * 30) * 1 + (20 + 30) * 8;
    EXPECT_EQ(q->weightBytesPerFrame(), int8Bytes);
    EXPECT_LT(q->weightBytesPerFrame(), ref->weightBytesPerFrame());

    EXPECT_TRUE(ref->bitIdenticalToReference());
    EXPECT_TRUE(blk->bitIdenticalToReference());
    EXPECT_FALSE(q->bitIdenticalToReference());
}

namespace {

/** Restores the SIMD test override on scope exit. */
struct ScalarOverrideGuard
{
    explicit ScalarOverrideGuard(bool force)
    {
        cpu::setForceScalarForTest(force);
    }
    ~ScalarOverrideGuard() { cpu::clearForceScalarForTest(); }
};

} // namespace

TEST(BackendSimd, BlockedAvx2WithinErrorBoundOfReference)
{
    // FMA contraction and lane-parallel accumulation reorder the
    // float sums, so blocked-avx2 promises a bound, not identity --
    // on the post-log-softmax scores a handful of ULPs.  When the
    // host lacks AVX2 the backend reports bitIdenticalToReference()
    // and must then match exactly.
    const Dnn net = makeNet(65, {96, 96}, 24, 4242);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto avx = Backend::create(BackendKind::BlockedAvx2, net);
    std::uint64_t seed = 900;
    for (std::size_t batch : {1u, 3u, 17u, 64u}) {
        const Matrix input = randomInput(batch, 65, seed++);
        const Matrix a = ref->scoreBatch(input);
        const Matrix b = avx->scoreBatch(input);
        ASSERT_EQ(a.rows(), b.rows());
        ASSERT_EQ(a.cols(), b.cols());
        if (avx->bitIdenticalToReference()) {
            expectBitIdentical(a, b);
            continue;
        }
        for (std::size_t r = 0; r < a.rows(); ++r)
            for (std::size_t c = 0; c < a.cols(); ++c)
                ASSERT_NEAR(a.at(r, c), b.at(r, c), 1e-4f)
                    << "batch " << batch << " (" << r << ", " << c
                    << ")";
    }
}

TEST(BackendSimd, BlockedAvx2HandlesTileTails)
{
    // Same tail-heavy shape sweep as the scalar blocked test: the
    // AVX2 kernel's partial-tile store path must not read or write
    // past the packed panel edges.
    struct Shape
    {
        std::size_t in;
        std::vector<std::size_t> hidden;
        std::size_t out;
    };
    const Shape shapes[] = {
        {5, {7}, 3},
        {16, {16}, 8},
        {33, {17, 9}, 13},
        {13, {}, 5},
    };
    std::uint64_t seed = 3000;
    for (const Shape &s : shapes) {
        const Dnn net = makeNet(s.in, s.hidden, s.out, 2000 + seed);
        const auto ref = Backend::create(BackendKind::Reference, net);
        const auto avx =
            Backend::create(BackendKind::BlockedAvx2, net);
        for (std::size_t batch : {1u, 2u, 33u}) {
            const Matrix input = randomInput(batch, s.in, seed++);
            const Matrix a = ref->scoreBatch(input);
            const Matrix b = avx->scoreBatch(input);
            for (std::size_t r = 0; r < a.rows(); ++r)
                for (std::size_t c = 0; c < a.cols(); ++c)
                    ASSERT_NEAR(a.at(r, c), b.at(r, c), 1e-4f);
        }
    }
}

TEST(BackendSimd, Int8Avx2BitwiseMatchesScalarInt8)
{
    // Integer accumulation is associative, so the vpmaddubsw kernel
    // must reproduce the scalar int8 scores exactly -- including on
    // shapes whose input dim is not a multiple of the 4-wide k
    // groups, where the packed panels are zero-padded.
    struct Shape
    {
        std::size_t in;
        std::vector<std::size_t> hidden;
        std::size_t out;
    };
    const Shape shapes[] = {
        {5, {7}, 3},
        {16, {16}, 8},
        {33, {17, 9}, 13},
        {65, {96, 96}, 24},
        {13, {}, 5},
    };
    std::uint64_t seed = 5000;
    for (const Shape &s : shapes) {
        const Dnn net = makeNet(s.in, s.hidden, s.out, 4000 + seed);
        const auto scalar = Backend::create(BackendKind::Int8, net);
        const auto avx = Backend::create(BackendKind::Int8Avx2, net);
        for (std::size_t batch : {1u, 2u, 17u, 64u}) {
            const Matrix input = randomInput(batch, s.in, seed++);
            expectBitIdentical(scalar->scoreBatch(input),
                               avx->scoreBatch(input));
        }
    }
}

TEST(BackendSimd, ForcedScalarFallbackIsBitIdentical)
{
    // With the override asserting "no AVX2", both SIMD backends must
    // construct on the scalar kernels: blocked-avx2 regains bitwise
    // identity with the reference and int8-avx2 still equals scalar
    // int8.  The override is read at construction, so the guard
    // wraps backend creation.
    const ScalarOverrideGuard guard(true);
    ASSERT_FALSE(cpu::hasAvx2());
    const Dnn net = makeNet(33, {17, 9}, 13, 808);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto avx = Backend::create(BackendKind::BlockedAvx2, net);
    const auto int8 = Backend::create(BackendKind::Int8, net);
    const auto qavx = Backend::create(BackendKind::Int8Avx2, net);
    EXPECT_EQ(avx->isa(), "scalar");
    EXPECT_EQ(qavx->isa(), "scalar");
    EXPECT_TRUE(avx->bitIdenticalToReference());
    const Matrix input = randomInput(19, 33, 606);
    expectBitIdentical(ref->scoreBatch(input),
                       avx->scoreBatch(input));
    expectBitIdentical(int8->scoreBatch(input),
                       qavx->scoreBatch(input));
}

TEST(BackendSimd, IsaReportsDispatchDecision)
{
    const Dnn net = makeNet(12, {8}, 6, 99);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto avx = Backend::create(BackendKind::BlockedAvx2, net);
    const auto qavx = Backend::create(BackendKind::Int8Avx2, net);
    EXPECT_EQ(ref->isa(), "scalar");
    const std::string_view expect =
        cpu::hasAvx2() ? "avx2" : "scalar";
    EXPECT_EQ(avx->isa(), expect);
    EXPECT_EQ(qavx->isa(), expect);
    // The dispatch predicate and the human-readable level agree.
    EXPECT_EQ(cpu::simdLevel(),
              cpu::hasAvx2() ? "avx2+fma" : "scalar");
}

TEST(BackendSimd, Avx2CostModelMatchesScalarSiblings)
{
    const Dnn net = makeNet(10, {20}, 30, 3);
    const auto blk = Backend::create(BackendKind::Blocked, net);
    const auto avx = Backend::create(BackendKind::BlockedAvx2, net);
    const auto q = Backend::create(BackendKind::Int8, net);
    const auto qavx = Backend::create(BackendKind::Int8Avx2, net);
    EXPECT_EQ(avx->macsPerFrame(), blk->macsPerFrame());
    EXPECT_EQ(qavx->macsPerFrame(), q->macsPerFrame());
    EXPECT_EQ(avx->weightBytesPerFrame(), blk->weightBytesPerFrame());
    EXPECT_EQ(qavx->weightBytesPerFrame(), q->weightBytesPerFrame());
    // int8-avx2 shares int8's accuracy contract, never bitwise.
    EXPECT_FALSE(qavx->bitIdenticalToReference());
}

TEST(BackendEquivalence, ZeroInputRow)
{
    // Digital silence: the int8 dynamic quantizer hits its amax == 0
    // special case; float paths must agree with each other too.
    const Dnn net = makeNet(12, {8}, 6, 55);
    const auto ref = Backend::create(BackendKind::Reference, net);
    const auto blk = Backend::create(BackendKind::Blocked, net);
    const auto q = Backend::create(BackendKind::Int8, net);
    Matrix zero(2, 12);  // all-zero batch
    expectBitIdentical(ref->scoreBatch(zero), blk->scoreBatch(zero));
    const Matrix qi = q->scoreBatch(zero);
    // Log-softmax rows must still normalize.
    for (std::size_t r = 0; r < qi.rows(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < qi.cols(); ++c)
            sum += std::exp(double(qi.at(r, c)));
        ASSERT_NEAR(sum, 1.0, 1e-4);
    }
}
