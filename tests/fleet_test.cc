/**
 * @file
 * Tests for the fleet layer (fleet::ShardRouter + fleet::LoadGen):
 *
 *  - Rendezvous placement: deterministic under a seed, disagreeing
 *    across seeds, and shard-count stable (growing N to N+1 only
 *    ever moves keys to the new shard).
 *  - Bit-identity: the router serves every stream bit-identically to
 *    a single Engine fed the same per-stream inputs in the same
 *    per-shard open order -- in both model modes (shared AsrModel,
 *    per-shard copies).
 *  - Rebalancing: a shard forced out of Healthy stops receiving new
 *    opens (they divert to the least-loaded shard) while its already
 *    open streams stay pinned, keep accepting audio, and still
 *    produce the right result; capacity rejections likewise fall
 *    over to other shards.
 *  - Handle hygiene: invalid, foreign-shard and un-tagged handles
 *    degrade per the documented invalid-handle contract.
 *  - Arrivals: Poisson inter-arrival times have the right mean and
 *    variance (seeded, so the bounds are deterministic); diurnal
 *    arrivals are strictly increasing and reproducible.
 *  - LoadGen: an in-process run accounts every arrival exactly once
 *    and records latency histograms; findCapacity brackets and
 *    bisects a synthetic SLO knee and reports ceiling saturation.
 *  - Serving: net::Server fronting a ShardRouter serves loopback
 *    clients end to end, and the STATS frame round-trips the
 *    fleet-aggregate telemetry.
 */

#include <chrono>
#include <cmath>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fleet/loadgen.hh"
#include "fleet/shard_router.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "wfst/generate.hh"

using namespace asr;
using api::OpenStatus;
using api::StreamHandle;
using api::StreamState;
using fleet::RouterOptions;
using fleet::ShardRouter;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

/** Shared net + trained model for the whole suite. */
class FleetTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2027;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));
        model = new pipeline::AsrModel(*net, modelConfig());
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    static pipeline::AsrSystemConfig
    modelConfig()
    {
        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 53;
        return mcfg;
    }

    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    static RouterOptions
    routerOptions(unsigned shards)
    {
        RouterOptions ropts;
        ropts.shards = shards;
        ropts.engine.numThreads = 2;
        ropts.engine.batchScoring = true;
        return ropts;
    }

    static void
    pushAll(api::StreamEndpoint &ep, StreamHandle h,
            const frontend::AudioSignal &audio,
            std::size_t chunk = 512)
    {
        const std::vector<float> &s = audio.samples;
        for (std::size_t base = 0; base < s.size(); base += chunk) {
            const std::size_t len = std::min(chunk, s.size() - base);
            ASSERT_TRUE(ep.push(
                h, std::span<const float>(s.data() + base, len)));
        }
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *FleetTest::net = nullptr;
pipeline::AsrModel *FleetTest::model = nullptr;

} // namespace

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, RendezvousPlacementIsDeterministicAndSeedSensitive)
{
    ShardRouter a(*model, routerOptions(4));
    ShardRouter b(*model, routerOptions(4));
    RouterOptions other = routerOptions(4);
    other.placementSeed = 0xfeedface;
    ShardRouter c(*model, other);

    unsigned seed_disagreements = 0;
    std::vector<unsigned> used(4, 0);
    for (std::uint64_t key = 0; key < 512; ++key) {
        const unsigned pa = a.placeKey(key);
        ASSERT_LT(pa, 4u);
        EXPECT_EQ(pa, b.placeKey(key)) << key;
        seed_disagreements += pa != c.placeKey(key);
        ++used[pa];
    }
    // A different seed is a different placement function...
    EXPECT_GT(seed_disagreements, 100u);
    // ...and a sane hash spreads 512 keys over 4 shards roughly
    // evenly (each expected 128; a lopsided mix() would crater one).
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_GT(used[s], 64u) << "shard " << s;
}

TEST_F(FleetTest, RendezvousPlacementIsShardCountStable)
{
    ShardRouter small(*model, routerOptions(3));
    ShardRouter grown(*model, routerOptions(4));

    unsigned moved = 0;
    for (std::uint64_t key = 0; key < 512; ++key) {
        const unsigned before = small.placeKey(key);
        const unsigned after = grown.placeKey(key);
        // The rendezvous property: adding shard 3 leaves shards
        // 0..2's scores untouched, so a key either stays put or
        // moves to the NEW shard -- never between old shards.
        if (after != before) {
            EXPECT_EQ(after, 3u) << key;
            ++moved;
        }
    }
    // Roughly 1/4 of the keyspace should move (512/4 = 128).
    EXPECT_GT(moved, 64u);
    EXPECT_LT(moved, 256u);
}

// ---------------------------------------------------------------------------
// Bit-identity with a single engine, both model modes.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, RouterMatchesSingleEngineBitIdenticalSharedModel)
{
    RouterOptions ropts = routerOptions(2);
    ropts.rebalance = false;  // pure rendezvous placement
    ShardRouter router(*model, ropts);

    constexpr unsigned kStreams = 6;
    struct Tracked
    {
        StreamHandle handle;
        unsigned shard = 0;
        frontend::AudioSignal audio;
        pipeline::RecognitionResult viaRouter;
    };
    std::vector<Tracked> streams(kStreams);
    // Per-shard open order: stream k opened as shard s's j-th stream
    // gets session id j on that shard's engine, which is what the
    // replay below reproduces on the reference engine.
    std::vector<std::vector<unsigned>> shardOrder(2);
    for (unsigned k = 0; k < kStreams; ++k) {
        Tracked &t = streams[k];
        t.audio = testAudio(1000 + k);
        OpenStatus status = OpenStatus::Capacity;
        t.handle = router.openKeyed(k, {}, status);
        ASSERT_EQ(status, OpenStatus::Ok);
        t.shard = router.shardOf(t.handle);
        EXPECT_EQ(t.shard, router.placeKey(k));
        shardOrder[t.shard].push_back(k);
    }
    ASSERT_FALSE(shardOrder[0].empty());
    ASSERT_FALSE(shardOrder[1].empty());

    for (Tracked &t : streams)
        pushAll(router, t.handle, t.audio);
    std::vector<std::future<pipeline::RecognitionResult>> futures;
    for (Tracked &t : streams)
        futures.push_back(router.finish(t.handle));
    for (unsigned k = 0; k < kStreams; ++k)
        streams[k].viaRouter = futures[k].get();

    // Replay each shard's streams, in that shard's open order, on a
    // fresh reference engine with the same options: session ids --
    // and so deriveSeed -- line up, and every word/score must match
    // bit for bit.
    for (unsigned s = 0; s < 2; ++s) {
        api::Engine reference(*model, ropts.engine);
        for (const unsigned k : shardOrder[s]) {
            const StreamHandle h = reference.open();
            ASSERT_NE(h.value, 0u);
            pushAll(reference, h, streams[k].audio);
            const pipeline::RecognitionResult expected =
                reference.finish(h).get();
            EXPECT_EQ(streams[k].viaRouter.words, expected.words)
                << "stream " << k << " shard " << s;
            EXPECT_EQ(streams[k].viaRouter.score, expected.score)
                << "stream " << k << " shard " << s;
        }
    }
}

TEST_F(FleetTest, RouterMatchesSingleEngineBitIdenticalPerShardModels)
{
    RouterOptions ropts = routerOptions(2);
    ropts.rebalance = false;
    // Per-shard mode: every shard trains its own model copy over the
    // same net + config -- deterministic, so each copy decodes
    // identically to a reference engine built the same way.
    ShardRouter router(*net, modelConfig(), ropts);

    constexpr unsigned kStreams = 4;
    std::vector<std::vector<unsigned>> shardOrder(2);
    std::vector<frontend::AudioSignal> audio(kStreams);
    std::vector<StreamHandle> handles(kStreams);
    for (unsigned k = 0; k < kStreams; ++k) {
        audio[k] = testAudio(2000 + k);
        OpenStatus status = OpenStatus::Capacity;
        handles[k] = router.openKeyed(k, {}, status);
        ASSERT_EQ(status, OpenStatus::Ok);
        shardOrder[router.shardOf(handles[k])].push_back(k);
    }
    std::vector<pipeline::RecognitionResult> via(kStreams);
    for (unsigned k = 0; k < kStreams; ++k)
        pushAll(router, handles[k], audio[k]);
    for (unsigned k = 0; k < kStreams; ++k)
        via[k] = router.finish(handles[k]).get();

    for (unsigned s = 0; s < 2; ++s) {
        api::Engine fresh(*net, modelConfig(), ropts.engine);
        for (const unsigned k : shardOrder[s]) {
            const StreamHandle h = fresh.open();
            ASSERT_NE(h.value, 0u);
            pushAll(fresh, h, audio[k]);
            const pipeline::RecognitionResult expected =
                fresh.finish(h).get();
            EXPECT_EQ(via[k].words, expected.words) << k;
            EXPECT_EQ(via[k].score, expected.score) << k;
        }
    }
}

// ---------------------------------------------------------------------------
// Rebalancing.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, PinnedStreamsSurviveRebalance)
{
    ShardRouter router(*model, routerOptions(2));

    // A key that rendezvouses onto shard 0 (search; placement is
    // deterministic so this terminates at the same key every run).
    std::uint64_t key0 = 0;
    while (router.placeKey(key0) != 0)
        ++key0;

    const frontend::AudioSignal audio = testAudio(31);
    OpenStatus status = OpenStatus::Capacity;
    const StreamHandle pinned = router.openKeyed(key0, {}, status);
    ASSERT_EQ(status, OpenStatus::Ok);
    ASSERT_EQ(router.shardOf(pinned), 0u);

    // Half the audio now, the rest after the rebalance: the pinned
    // stream must keep decoding across it.
    const std::vector<float> &s = audio.samples;
    const std::size_t half = s.size() / 2;
    ASSERT_TRUE(
        router.push(pinned, std::span<const float>(s.data(), half)));

    // Force shard 0 out of Healthy through the external-signal hook
    // (sustained saturation: several over-threshold observations so
    // the EWMA crosses entry).
    for (int i = 0; i < 8; ++i)
        router.observeShard(0, 500.0, 1024);
    ASSERT_NE(router.shardState(0),
              net::OverloadMonitor::State::Healthy);

    // New opens for shard-0 keys divert to shard 1...
    for (unsigned extra = 0; extra < 3; ++extra) {
        OpenStatus st = OpenStatus::Capacity;
        const StreamHandle h = router.openKeyed(key0, {}, st);
        ASSERT_EQ(st, OpenStatus::Ok);
        EXPECT_EQ(router.shardOf(h), 1u) << extra;
        EXPECT_TRUE(router.cancel(h));
    }
    EXPECT_GE(router.counters().opensDiverted, 3u);

    // ...while the pinned stream stays on shard 0, still accepts
    // audio, and produces exactly the single-engine result.
    EXPECT_EQ(router.shardOf(pinned), 0u);
    EXPECT_EQ(router.state(pinned), StreamState::Open);
    ASSERT_TRUE(router.push(
        pinned,
        std::span<const float>(s.data() + half, s.size() - half)));
    const pipeline::RecognitionResult got =
        router.finish(pinned).get();

    api::Engine reference(*model, routerOptions(2).engine);
    const StreamHandle h = reference.open();
    pushAll(reference, h, audio);
    // Chunking differs (half/half vs 512) -- irrelevant by the
    // engine's chunk-boundary-invariance guarantee.
    const pipeline::RecognitionResult expected =
        reference.finish(h).get();
    EXPECT_EQ(got.words, expected.words);
    EXPECT_EQ(got.score, expected.score);
}

TEST_F(FleetTest, CapacityRejectionFallsOverToOtherShards)
{
    RouterOptions ropts;
    ropts.shards = 2;
    ropts.engine.numThreads = 1;  // per-session mode: 1 stream/shard
    ropts.engine.batchScoring = false;
    ShardRouter router(*model, ropts);

    std::uint64_t key0 = 0;
    while (router.placeKey(key0) != 0)
        ++key0;

    // First open lands on its rendezvous shard 0 and fills it.
    OpenStatus status = OpenStatus::Capacity;
    const StreamHandle first = router.openKeyed(key0, {}, status);
    ASSERT_EQ(status, OpenStatus::Ok);
    ASSERT_EQ(router.shardOf(first), 0u);

    // Same key again: shard 0 is full (Capacity), so the open falls
    // over to shard 1 instead of surfacing the rejection.
    const StreamHandle second = router.openKeyed(key0, {}, status);
    ASSERT_EQ(status, OpenStatus::Ok);
    EXPECT_EQ(router.shardOf(second), 1u);
    EXPECT_EQ(router.counters().opensDiverted, 1u);

    // Both shards full: now the rejection is real.
    const StreamHandle third = router.openKeyed(key0, {}, status);
    EXPECT_EQ(status, OpenStatus::Capacity);
    EXPECT_EQ(third.value, 0u);
    EXPECT_EQ(router.counters().opensRejected, 1u);

    EXPECT_TRUE(router.cancel(first));
    EXPECT_TRUE(router.cancel(second));
}

// ---------------------------------------------------------------------------
// Handle hygiene and aggregate stats.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, InvalidAndForeignHandlesDegradeCleanly)
{
    ShardRouter router(*model, routerOptions(2));
    const float sample = 0.0f;
    const auto chunk = std::span<const float>(&sample, 1);

    // Default (invalid), foreign-shard tag, and un-tagged (a raw
    // engine handle leaked into composite space) all follow the
    // invalid-handle contract.
    for (const StreamHandle h :
         {StreamHandle{}, StreamHandle{(9ull << 48) | 5ull},
          StreamHandle{5}}) {
        EXPECT_FALSE(router.push(h, chunk)) << h.value;
        EXPECT_TRUE(router.partial(h).empty()) << h.value;
        EXPECT_FALSE(router.finish(h).valid()) << h.value;
        EXPECT_FALSE(router.cancel(h)) << h.value;
        EXPECT_EQ(router.state(h), StreamState::Done) << h.value;
        EXPECT_FALSE(router.deadlineExpired(h)) << h.value;
        EXPECT_EQ(router.shardOf(h), router.shardCount()) << h.value;
    }
}

TEST_F(FleetTest, AggregateStatsSumShards)
{
    RouterOptions ropts = routerOptions(2);
    ropts.rebalance = false;
    ShardRouter router(*model, ropts);

    // Place one utterance on each shard (keys found by placement).
    std::uint64_t k0 = 0, k1 = 0;
    while (router.placeKey(k0) != 0)
        ++k0;
    while (router.placeKey(k1) != 1)
        ++k1;
    for (const std::uint64_t key : {k0, k1}) {
        OpenStatus status = OpenStatus::Capacity;
        const StreamHandle h = router.openKeyed(key, {}, status);
        ASSERT_EQ(status, OpenStatus::Ok);
        pushAll(router, h, testAudio(40 + key));
        router.finish(h).get();
    }
    router.drain();

    const server::EngineSnapshot agg = router.stats();
    const server::EngineSnapshot s0 = router.shardStats(0);
    const server::EngineSnapshot s1 = router.shardStats(1);
    EXPECT_EQ(s0.utterances, 1u);
    EXPECT_EQ(s1.utterances, 1u);
    EXPECT_EQ(agg.utterances, 2u);
    EXPECT_DOUBLE_EQ(agg.audioSeconds,
                     s0.audioSeconds + s1.audioSeconds);
    EXPECT_EQ(agg.framesDecoded,
              s0.framesDecoded + s1.framesDecoded);
    EXPECT_GE(agg.latencyP99Ms,
              std::max(s0.latencyP99Ms, s1.latencyP99Ms));
}

// ---------------------------------------------------------------------------
// Arrival processes.
// ---------------------------------------------------------------------------

TEST(FleetArrivals, PoissonInterArrivalStatistics)
{
    fleet::ArrivalConfig cfg;
    cfg.ratePerSec = 50.0;
    cfg.seed = 12345;
    fleet::ArrivalProcess process(cfg);

    constexpr unsigned kN = 20000;
    std::vector<double> gaps;
    gaps.reserve(kN);
    double prev = 0.0;
    for (unsigned i = 0; i < kN; ++i) {
        const double t = process.next();
        ASSERT_GT(t, prev);
        gaps.push_back(t - prev);
        prev = t;
    }
    double mean = 0.0;
    for (const double g : gaps)
        mean += g;
    mean /= kN;
    double var = 0.0;
    for (const double g : gaps)
        var += (g - mean) * (g - mean);
    var /= kN - 1;

    // Exponential(rate): mean 1/rate, variance 1/rate^2.  The seed is
    // fixed, so these bounds are deterministic, but they are set where
    // ANY healthy seed lands (~1/sqrt(N) ~ 0.7% sampling error).
    EXPECT_NEAR(mean, 1.0 / 50.0, 0.05 / 50.0);
    EXPECT_NEAR(var, 1.0 / 2500.0, 0.15 / 2500.0);

    // Same seed, same schedule, exactly.
    fleet::ArrivalProcess replay(cfg);
    double expected = 0.0;
    for (unsigned i = 0; i < 100; ++i) {
        expected += gaps[i];
        EXPECT_DOUBLE_EQ(replay.next(), expected) << i;
    }
}

TEST(FleetArrivals, DiurnalArrivalsIncreaseAndReproduce)
{
    fleet::ArrivalConfig cfg;
    cfg.kind = fleet::ArrivalConfig::Kind::Diurnal;
    cfg.ratePerSec = 20.0;
    cfg.diurnalPeriodSec = 5.0;
    cfg.diurnalDepth = 0.8;
    cfg.seed = 7;
    fleet::ArrivalProcess a(cfg), b(cfg);
    double prev = 0.0;
    for (unsigned i = 0; i < 2000; ++i) {
        const double t = a.next();
        EXPECT_GT(t, prev);
        EXPECT_DOUBLE_EQ(t, b.next());
        prev = t;
    }
    // Thinning preserves the mean rate: ~20/s over the run.
    const double observed_rate = 2000.0 / prev;
    EXPECT_NEAR(observed_rate, 20.0, 2.0);
}

// ---------------------------------------------------------------------------
// LoadGen + capacity search.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, LoadGenAccountsEveryArrival)
{
    ShardRouter router(*model, routerOptions(2));

    fleet::LoadConfig lcfg;
    lcfg.arrivals.ratePerSec = 200.0;  // virtual: pace off
    lcfg.arrivals.seed = 5;
    lcfg.durationSec = 0.2;
    lcfg.pace = false;  // blast: functional coverage, not latency
    lcfg.maxConcurrent = 16;
    lcfg.seed = 9;
    fleet::LoadGen gen(lcfg);

    std::vector<frontend::AudioSignal> corpus;
    for (unsigned u = 0; u < 3; ++u)
        corpus.push_back(testAudio(600 + u, 3));
    const fleet::LoadMetrics m = gen.run(router, corpus);

    EXPECT_GT(m.offered, 0u);
    EXPECT_GT(m.completed, 0u);
    EXPECT_EQ(m.errors, 0u);
    // Every offered arrival is accounted exactly once.
    EXPECT_EQ(m.offered,
              m.admitted + m.shedServer + m.shedClient);
    EXPECT_EQ(m.admitted,
              m.completed + m.deadlineExpired + m.errors);
    EXPECT_EQ(m.finalMs.count(), m.completed);
    EXPECT_GT(m.audioSecondsPushed, 0.0);
    // Batch-mode shards admit everything the cap lets through.
    EXPECT_EQ(m.shedServer, 0u);
}

TEST(FleetCapacity, FindCapacityBracketsAndBisects)
{
    // Synthetic target: the SLO holds up to exactly 10 streams/s.
    // (Enough samples that quantile(0.999) lands on the population,
    // and values inside the histogram's 4096 ms range.)
    const auto run_at_rate = [](double rate) {
        fleet::LoadMetrics m;
        m.offered = 100;
        m.admitted = 100;
        m.completed = 100;
        m.elapsedSec = 1.0;
        for (unsigned i = 0; i < 100; ++i)
            m.finalMs.sample(rate <= 10.0 ? 50.0 : 1500.0);
        return m;
    };
    fleet::SloConfig slo;
    slo.finalP999Ms = 1000.0;

    const fleet::CapacityResult cap =
        fleet::findCapacity(run_at_rate, slo, 2.0, 64.0, 6, 1.5);
    EXPECT_FALSE(cap.ceilingReached);
    EXPECT_GE(cap.sustainedRatePerSec, 8.0);
    EXPECT_LE(cap.sustainedRatePerSec, 10.0);
    EXPECT_DOUBLE_EQ(cap.sustainedStreams,
                     cap.sustainedRatePerSec * 1.5);
    // Doubling 2 -> 4 -> 8 -> 16 (fail) + 6 bisections.
    EXPECT_EQ(cap.probes.size(), 10u);

    // Always-meets: the ceiling is the answer and is flagged as such.
    const fleet::CapacityResult ceiling = fleet::findCapacity(
        [](double) {
            fleet::LoadMetrics m;
            m.offered = m.admitted = m.completed = 10;
            for (unsigned i = 0; i < 10; ++i)
                m.finalMs.sample(10.0);
            return m;
        },
        slo, 4.0, 32.0, 4, 2.0);
    EXPECT_TRUE(ceiling.ceilingReached);
    EXPECT_DOUBLE_EQ(ceiling.sustainedRatePerSec, 32.0);

    // Never-meets: capacity zero, no bisection to nowhere.
    const fleet::CapacityResult none = fleet::findCapacity(
        [](double) { return fleet::LoadMetrics{}; }, slo, 4.0, 32.0,
        4, 2.0);
    EXPECT_DOUBLE_EQ(none.sustainedRatePerSec, 0.0);
    EXPECT_EQ(none.probes.size(), 1u);
}

// ---------------------------------------------------------------------------
// net::Server fronting a ShardRouter.
// ---------------------------------------------------------------------------

TEST_F(FleetTest, ServerFrontsRouterAndStatsRoundTrips)
{
    ShardRouter router(*model, routerOptions(2));
    net::Server server(router);

    const frontend::AudioSignal audio = testAudio(77);
    net::Client client;
    ASSERT_TRUE(client.connectRetrying("127.0.0.1", server.port()));

    // Two streams on one connection, served through the router.
    for (const std::uint32_t id : {1u, 2u}) {
        ASSERT_EQ(client.openStream(id),
                  net::Client::OpenOutcome::Ok);
    }
    const std::vector<float> &s = audio.samples;
    for (const std::uint32_t id : {1u, 2u}) {
        for (std::size_t off = 0; off < s.size(); off += 1024) {
            const std::size_t len = std::min<std::size_t>(
                1024, s.size() - off);
            ASSERT_TRUE(client.pushChunk(
                id, std::span<const float>(s.data() + off, len)));
        }
    }
    net::FinalResult first, second;
    ASSERT_TRUE(client.finishStream(1, first));
    ASSERT_TRUE(client.finishStream(2, second));
    // Same audio, same model: the two streams (whichever shards they
    // landed on) agree.
    EXPECT_EQ(first.words, second.words);
    EXPECT_EQ(first.score, second.score);

    // And bit-identical to a direct single-engine decode.
    api::Engine reference(*model, routerOptions(2).engine);
    const StreamHandle h = reference.open();
    pushAll(reference, h, audio);
    const pipeline::RecognitionResult expected =
        reference.finish(h).get();
    EXPECT_EQ(first.words, expected.words);
    EXPECT_EQ(first.score, expected.score);

    // STATS round-trip carries the fleet-aggregate telemetry.
    net::StatsReply stats;
    ASSERT_TRUE(client.requestStats(stats));
    EXPECT_EQ(stats.utterances, 2u);
    EXPECT_EQ(stats.streamsOpened, 2u);
    EXPECT_EQ(stats.streamsActive, 0u);
    EXPECT_LE(stats.overloadState, 2u);
    EXPECT_GT(stats.latencyP99Ms, 0.0);
    EXPECT_EQ(server.counters().statsRequests, 1u);

    client.disconnect();
    server.stop();
}
