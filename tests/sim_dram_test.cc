/**
 * @file
 * Tests for the DRAM / memory-controller model: latency, in-flight
 * window, per-cycle issue limit, and per-class traffic accounting.
 */

#include <gtest/gtest.h>

#include "sim/dram.hh"

using namespace asr;
using namespace asr::sim;

TEST(Dram, FixedLatency)
{
    Dram d(DramConfig{50, 32, 1, 64});
    const RequestId id = d.issue(0x1000, DataClass::Arc, false, 100);
    ASSERT_NE(id, kNoRequest);
    EXPECT_FALSE(d.ready(id, 100));
    EXPECT_FALSE(d.ready(id, 149));
    EXPECT_TRUE(d.ready(id, 150));
    EXPECT_EQ(d.readyAt(id), 150u);
    d.retire(id);
    EXPECT_EQ(d.inflight(), 0u);
}

TEST(Dram, IssueWidthOnePerCycle)
{
    Dram d(DramConfig{50, 32, 1, 64});
    ASSERT_NE(d.issue(0, DataClass::Arc, false, 7), kNoRequest);
    // Second issue in the same cycle is rejected...
    EXPECT_EQ(d.issue(64, DataClass::Arc, false, 7), kNoRequest);
    // ...but succeeds one cycle later.
    EXPECT_NE(d.issue(64, DataClass::Arc, false, 8), kNoRequest);
    EXPECT_EQ(d.stats().rejectedIssues, 1u);
}

TEST(Dram, InflightWindowSaturates)
{
    Dram d(DramConfig{50, 4, 4, 64});
    std::vector<RequestId> ids;
    for (unsigned i = 0; i < 4; ++i) {
        const RequestId id =
            d.issue(i * 64, DataClass::State, false, 1);
        ASSERT_NE(id, kNoRequest);
        ids.push_back(id);
    }
    // Window full.
    EXPECT_EQ(d.issue(999, DataClass::State, false, 2), kNoRequest);
    d.retire(ids[0]);
    EXPECT_NE(d.issue(999, DataClass::State, false, 3), kNoRequest);
}

TEST(Dram, TrafficAccountingByClass)
{
    Dram d(DramConfig{50, 32, 4, 64});
    const RequestId a = d.issue(0, DataClass::Arc, false, 1);
    const RequestId b = d.issue(64, DataClass::State, false, 1);
    const RequestId c = d.issue(128, DataClass::Token, true, 1);
    d.retire(a);
    d.retire(b);
    d.retire(c);
    d.countWrite(DataClass::Token, 64);
    d.countRead(DataClass::Acoustic, 16384);

    const DramStats &s = d.stats();
    EXPECT_EQ(s.readBytes[unsigned(DataClass::Arc)], 64u);
    EXPECT_EQ(s.readBytes[unsigned(DataClass::State)], 64u);
    EXPECT_EQ(s.writeBytes[unsigned(DataClass::Token)], 128u);
    EXPECT_EQ(s.readBytes[unsigned(DataClass::Acoustic)], 16384u);
    EXPECT_EQ(s.totalBytes(), 64u + 64u + 128u + 16384u);
    EXPECT_EQ(s.bytesForClass(DataClass::Token), 128u);
    EXPECT_EQ(s.totalRequests(), 5u);
}

TEST(Dram, SlotReuseAfterRetire)
{
    Dram d(DramConfig{10, 2, 2, 64});
    const RequestId a = d.issue(0, DataClass::Arc, false, 1);
    const RequestId b = d.issue(64, DataClass::Arc, false, 1);
    d.retire(a);
    const RequestId c = d.issue(128, DataClass::Arc, false, 2);
    ASSERT_NE(c, kNoRequest);
    // The freed slot is reused; b is still tracked correctly.
    EXPECT_TRUE(d.ready(b, 11));
    EXPECT_TRUE(d.ready(c, 12));
    d.retire(b);
    d.retire(c);
    EXPECT_EQ(d.inflight(), 0u);
}

TEST(Dram, DataClassNames)
{
    EXPECT_STREQ(dataClassName(DataClass::State), "states");
    EXPECT_STREQ(dataClassName(DataClass::Arc), "arcs");
    EXPECT_STREQ(dataClassName(DataClass::Token), "tokens");
    EXPECT_STREQ(dataClassName(DataClass::Overflow), "overflow");
    EXPECT_STREQ(dataClassName(DataClass::Acoustic), "acoustic");
}
