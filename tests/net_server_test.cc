/**
 * @file
 * Loopback tests for the network front door (asr::net::Server +
 * Client over real TCP sockets):
 *
 *  - Bit-identity: audio streamed through the protocol produces
 *    exactly the words and score of the same audio pushed through an
 *    in-process Engine with matching session ids, in both batch and
 *    per-session engine modes.
 *  - Multiplexing: several interleaved streams on one connection all
 *    come back bit-identical.
 *  - The RETRY_AFTER contract, from both sources: a saturated
 *    per-session engine (OpenStatus::Capacity) and the server-level
 *    maxStreams admission bound.  In both cases the same OPEN
 *    succeeds after a slot frees -- the rejection is recoverable.
 *  - Robustness: a mid-utterance disconnect cancels the abandoned
 *    engine stream; malformed bytes poison only their own
 *    connection; requests against unknown/duplicate streams answer
 *    machine-readable ERRORs; the server keeps serving fresh
 *    connections after each failure mode.
 */

#include <chrono>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "wfst/generate.hh"

using namespace asr;
using api::Engine;
using api::EngineOptions;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

/** Shared net + trained model for the whole suite. */
class NetServerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2027;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));

        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 53;
        model = new pipeline::AsrModel(*net, mcfg);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    /** Push @p audio over the wire in @p chunk-sample pieces. */
    static void
    pushAll(net::Client &client, std::uint32_t stream,
            const frontend::AudioSignal &audio, std::size_t chunk)
    {
        const std::vector<float> &s = audio.samples;
        for (std::size_t base = 0; base < s.size(); base += chunk) {
            const std::size_t len = std::min(chunk, s.size() - base);
            ASSERT_TRUE(client.pushChunk(
                stream,
                std::span<const float>(s.data() + base, len)))
                << client.lastError();
        }
    }

    /** Spin until @p pred holds (counters are updated by the loop
     *  thread asynchronously to client-visible responses). */
    static bool
    eventually(const std::function<bool()> &pred)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (std::chrono::steady_clock::now() < deadline) {
            if (pred())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        return pred();
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *NetServerTest::net = nullptr;
pipeline::AsrModel *NetServerTest::model = nullptr;

} // namespace

// ---------------------------------------------------------------------------
// Bit-identity across the wire.
// ---------------------------------------------------------------------------

TEST_F(NetServerTest, LoopbackMatchesInProcessEngineBitForBit)
{
    const frontend::AudioSignal audio = testAudio(11);
    for (const bool batched : {false, true}) {
        // Reference: a fresh in-process engine, so the wire stream
        // and the reference both decode as session id 0 (the
        // determinism contract keys results on the session id).
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        pipeline::RecognitionResult want;
        {
            Engine reference(*model, opts);
            want = reference.recognize(audio);
        }

        Engine engine(*model, opts);
        net::Server server(engine);
        net::Client client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()))
            << client.lastError();
        ASSERT_EQ(client.openStream(1),
                  net::Client::OpenOutcome::Ok)
            << client.lastError();
        pushAll(client, 1, audio, 512);

        net::FinalResult got;
        ASSERT_TRUE(client.finishStream(1, got))
            << client.lastError();
        EXPECT_EQ(got.words, want.words) << "batched=" << batched;
        EXPECT_EQ(got.score, want.score) << "batched=" << batched;
        EXPECT_DOUBLE_EQ(got.audioSeconds, want.audioSeconds);
    }
}

TEST_F(NetServerTest, InterleavedStreamsOnOneConnectionStayIdentical)
{
    constexpr unsigned kStreams = 3;
    std::vector<frontend::AudioSignal> audio;
    for (unsigned u = 0; u < kStreams; ++u)
        audio.push_back(testAudio(100 + u, 5 + u));

    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;

    // Reference: same open order on a fresh engine, so stream k gets
    // session id k on both sides.
    std::vector<pipeline::RecognitionResult> want;
    {
        Engine reference(*model, opts);
        std::vector<api::StreamHandle> handles;
        for (unsigned u = 0; u < kStreams; ++u)
            handles.push_back(reference.open());
        for (unsigned u = 0; u < kStreams; ++u)
            ASSERT_TRUE(reference.push(
                handles[u],
                std::span<const float>(audio[u].samples)));
        for (unsigned u = 0; u < kStreams; ++u)
            want.push_back(reference.finish(handles[u]).get());
    }

    Engine engine(*model, opts);
    net::Server server(engine);
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    for (unsigned u = 0; u < kStreams; ++u)
        ASSERT_EQ(client.openStream(1 + u),
                  net::Client::OpenOutcome::Ok)
            << client.lastError();

    // Interleave: one chunk of each stream per round.
    std::vector<std::size_t> off(kStreams, 0);
    bool more = true;
    while (more) {
        more = false;
        for (unsigned u = 0; u < kStreams; ++u) {
            const std::vector<float> &s = audio[u].samples;
            if (off[u] >= s.size())
                continue;
            const std::size_t len =
                std::min<std::size_t>(512, s.size() - off[u]);
            ASSERT_TRUE(client.pushChunk(
                1 + u, std::span<const float>(s.data() + off[u],
                                              len)));
            off[u] += len;
            more = true;
        }
    }

    for (unsigned u = 0; u < kStreams; ++u) {
        net::FinalResult got;
        ASSERT_TRUE(client.finishStream(1 + u, got))
            << client.lastError();
        EXPECT_EQ(got.words, want[u].words) << "stream " << u;
        EXPECT_EQ(got.score, want[u].score) << "stream " << u;
    }
    EXPECT_EQ(server.counters().streamsFinished, kStreams);
}

TEST_F(NetServerTest, PartialsArriveWhileStreaming)
{
    EngineOptions opts;
    opts.numThreads = 2;
    Engine engine(*model, opts);
    net::Server server(engine);
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_EQ(client.openStream(1), net::Client::OpenOutcome::Ok);

    const frontend::AudioSignal audio = testAudio(12, 8);
    const std::vector<float> &s = audio.samples;
    bool sawWords = false;
    for (std::size_t base = 0; base < s.size(); base += 256) {
        const std::size_t len = std::min<std::size_t>(
            256, s.size() - base);
        ASSERT_TRUE(client.pushChunk(
            1, std::span<const float>(s.data() + base, len)));
        std::vector<wfst::WordId> words;
        ASSERT_TRUE(client.requestPartial(1, words))
            << client.lastError();
        sawWords = sawWords || !words.empty();
    }
    // The partial *channel* must work end to end; whether words have
    // stabilized mid-utterance is decoder timing, so allow a final
    // blocking poll to be the one that sees them.
    net::FinalResult got;
    ASSERT_TRUE(client.finishStream(1, got));
    EXPECT_TRUE(sawWords || !got.words.empty());
}

// ---------------------------------------------------------------------------
// The RETRY_AFTER contract (both overload sources).
// ---------------------------------------------------------------------------

TEST_F(NetServerTest, EngineCapacityAnswersRetryAfterAndRecovers)
{
    // Per-session mode with one worker: the second OPEN hits
    // OpenStatus::Capacity inside the engine.
    EngineOptions opts;
    opts.numThreads = 1;
    opts.batchScoring = false;
    Engine engine(*model, opts);
    net::ServerOptions sopts;
    sopts.retryAfterMs = 5;
    net::Server server(engine, sopts);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_EQ(client.openStream(1), net::Client::OpenOutcome::Ok);
    ASSERT_EQ(client.openStream(2),
              net::Client::OpenOutcome::RetryAfter);
    EXPECT_EQ(client.retryAfterMs(), 5u);

    // Free the slot; the *same* OPEN must now succeed -- the
    // rejection was recoverable, not a poisoned stream id.
    const frontend::AudioSignal audio = testAudio(21);
    pushAll(client, 1, audio, 1024);
    net::FinalResult first;
    ASSERT_TRUE(client.finishStream(1, first));

    ASSERT_TRUE(client.openStreamRetrying(2))
        << client.lastError();
    pushAll(client, 2, audio, 1024);
    net::FinalResult second;
    ASSERT_TRUE(client.finishStream(2, second));
    EXPECT_GE(server.counters().retryAfterSent, 1u);
    EXPECT_EQ(server.counters().streamsFinished, 2u);
}

TEST_F(NetServerTest, ServerMaxStreamsBoundsAdmissionAcrossConnections)
{
    // Batch mode admits unboundedly at the engine, so the server's
    // own admission bound is the only shed valve.
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    net::ServerOptions sopts;
    sopts.maxStreams = 1;
    sopts.retryAfterMs = 5;
    net::Server server(engine, sopts);

    net::Client a, b;
    ASSERT_TRUE(a.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(b.connect("127.0.0.1", server.port()));
    ASSERT_EQ(a.openStream(1), net::Client::OpenOutcome::Ok);
    ASSERT_EQ(b.openStream(1),
              net::Client::OpenOutcome::RetryAfter);

    const frontend::AudioSignal audio = testAudio(31);
    pushAll(a, 1, audio, 1024);
    net::FinalResult fin;
    ASSERT_TRUE(a.finishStream(1, fin));

    ASSERT_TRUE(b.openStreamRetrying(1)) << b.lastError();
    pushAll(b, 1, audio, 1024);
    ASSERT_TRUE(b.finishStream(1, fin));
}

// ---------------------------------------------------------------------------
// Failure modes: the server outlives its worst clients.
// ---------------------------------------------------------------------------

TEST_F(NetServerTest, MidUtteranceDisconnectCancelsTheEngineStream)
{
    EngineOptions opts;
    opts.numThreads = 1;
    opts.batchScoring = false;
    Engine engine(*model, opts);
    net::Server server(engine);

    {
        net::Client client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        ASSERT_EQ(client.openStream(1),
                  net::Client::OpenOutcome::Ok);
        pushAll(client, 1, testAudio(41), 512);
        client.disconnect();  // mid-utterance hangup
    }
    ASSERT_TRUE(eventually([&] {
        return server.counters().disconnectCancels == 1;
    }));

    // The abandoned stream released the single worker: a new client
    // opens immediately, no RETRY_AFTER.
    net::Client next;
    ASSERT_TRUE(next.connect("127.0.0.1", server.port()));
    EXPECT_EQ(next.openStream(1), net::Client::OpenOutcome::Ok);
}

TEST_F(NetServerTest, MalformedBytesPoisonOnlyTheirOwnConnection)
{
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    net::Server server(engine);

    // A healthy stream on connection A...
    net::Client healthy;
    ASSERT_TRUE(healthy.connect("127.0.0.1", server.port()));
    ASSERT_EQ(healthy.openStream(1), net::Client::OpenOutcome::Ok);

    // ...while connection B talks garbage: a length prefix smaller
    // than the fixed fields.
    std::string err;
    net::Socket raw =
        net::connectTcp("127.0.0.1", server.port(), err);
    ASSERT_TRUE(raw.valid()) << err;
    const std::uint8_t junk[] = {2, 0, 0, 0, 0xFF, 0xFF};
    ASSERT_TRUE(net::sendAll(raw.fd(), junk, sizeof(junk)));

    // The server answers one ERROR frame, then closes B.
    net::FrameReader reader;
    net::Frame frame;
    bool gotError = false, closed = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline && !closed) {
        std::uint8_t buf[4096];
        const ssize_t n = ::recv(raw.fd(), buf, sizeof(buf), 0);
        if (n == 0) {
            closed = true;
            break;
        }
        if (n < 0)
            continue;
        reader.feed(std::span<const std::uint8_t>(
            buf, std::size_t(n)));
        while (reader.next(frame)) {
            if (frame.type == net::FrameType::RespError) {
                net::ErrorInfo info;
                ASSERT_TRUE(
                    net::decodeError(frame.payload, info));
                EXPECT_EQ(info.code, net::ErrorCode::BadFrame);
                gotError = true;
            }
        }
    }
    EXPECT_TRUE(gotError);
    EXPECT_TRUE(closed);
    EXPECT_GE(server.counters().malformedFrames, 1u);

    // Connection A never noticed.
    const frontend::AudioSignal audio = testAudio(51);
    pushAll(healthy, 1, audio, 1024);
    net::FinalResult fin;
    EXPECT_TRUE(healthy.finishStream(1, fin))
        << healthy.lastError();
}

TEST_F(NetServerTest, UnknownAndDuplicateStreamsAnswerErrors)
{
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    net::Server server(engine);
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    // FINISH on a stream that was never opened.
    net::FinalResult fin;
    EXPECT_FALSE(client.finishStream(9, fin));
    EXPECT_FALSE(client.lastError().empty());

    // The connection survived the ERROR: open and double-open.
    ASSERT_EQ(client.openStream(1), net::Client::OpenOutcome::Ok);
    EXPECT_EQ(client.openStream(1),
              net::Client::OpenOutcome::Error);

    // And the original stream still works end to end.
    pushAll(client, 1, testAudio(61), 1024);
    EXPECT_TRUE(client.finishStream(1, fin))
        << client.lastError();
    EXPECT_GE(server.counters().errorsSent, 2u);
}

TEST_F(NetServerTest, StopWithLiveConnectionsShutsDownCleanly)
{
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    net::Server server(engine);

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ASSERT_EQ(client.openStream(1), net::Client::OpenOutcome::Ok);
    pushAll(client, 1, testAudio(71), 512);

    server.stop();  // joins the loop; cancels the live stream
    EXPECT_EQ(server.counters().connectionsClosed,
              server.counters().connectionsAccepted);
}
