/**
 * @file
 * Tests for the unified streaming engine (api::Engine): one public
 * path for one-shot, live-streaming and batch-scored serving.
 *
 *  - Bit-identity: a live stream pushed in arbitrary chunks, a
 *    one-shot submit, the legacy AsrSystem facade and the legacy
 *    DecodeScheduler all produce the same words/score, in both
 *    per-session and batch-scoring mode.
 *  - Stream lifecycle edges: cancel mid-utterance (and while still
 *    queued), push-after-finish rejected, zero-frame streams,
 *    double-finish discipline, per-session capacity rejection,
 *    destruction with open + finishing streams in both modes.
 *  - Concurrency: >= 8 interleaved live streams over a small worker
 *    pool in batch mode (TSan runs this via the concurrency label),
 *    with live frames provably reaching the cross-session batch
 *    scorer (mean batch rows > 1).
 *  - Options validation: unknown search/acoustic backend names are
 *    rejected with diagnostics listing the registered ones.
 *  - EngineStats: time-to-first-partial is recorded and rendered.
 *  - Deadlines: the watchdog forecloses abandoned streams at their
 *    StreamOptions::deadlineMs, bounds the finish wait, never fires
 *    on prompt streams, and survives a three-way cancel vs deadline
 *    vs finish race in both engine modes (TSan-checked in CI).
 */

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "pipeline/asr_system.hh"
#include "server/scheduler.hh"
#include "wfst/generate.hh"

using namespace asr;
using api::Engine;
using api::EngineOptions;
using api::StreamHandle;
using api::StreamState;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

/** Shared net + trained model for the whole suite. */
class ApiEngineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2027;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));
        model = new pipeline::AsrModel(*net, modelConfig());
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    static pipeline::AsrSystemConfig
    modelConfig()
    {
        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 53;
        return mcfg;
    }

    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    /** Stream @p audio through a live handle in @p chunk chunks. */
    static pipeline::RecognitionResult
    streamThrough(Engine &engine, const frontend::AudioSignal &audio,
                  std::size_t chunk)
    {
        const StreamHandle h = engine.open();
        const std::vector<float> &s = audio.samples;
        for (std::size_t base = 0; base < s.size(); base += chunk) {
            const std::size_t len = std::min(chunk, s.size() - base);
            EXPECT_TRUE(engine.push(
                h, std::span<const float>(s.data() + base, len)));
        }
        return engine.finish(h).get();
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *ApiEngineTest::net = nullptr;
pipeline::AsrModel *ApiEngineTest::model = nullptr;

} // namespace

// ---------------------------------------------------------------------------
// One public path: every entry style produces the same bits.
// ---------------------------------------------------------------------------

TEST_F(ApiEngineTest, LiveStreamMatchesOneShotForAnyChunking)
{
    const frontend::AudioSignal audio = testAudio(7);
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        const auto oneShot = engine.recognize(audio);
        for (const std::size_t chunk :
             {std::size_t(160), std::size_t(997),
              std::size_t(1) << 20}) {
            const auto streamed =
                streamThrough(engine, audio, chunk);
            EXPECT_EQ(streamed.words, oneShot.words)
                << "chunk " << chunk << " batched " << batched;
            EXPECT_EQ(streamed.score, oneShot.score)
                << "chunk " << chunk << " batched " << batched;
        }
    }
}

TEST_F(ApiEngineTest, LegacySurfacesAreBitIdenticalShims)
{
    const frontend::AudioSignal audio = testAudio(11);

    // The reference: the unified engine over the shared model.
    EngineOptions opts;
    Engine engine(*model, opts);
    const auto want = engine.recognize(audio);

    // DecodeScheduler is a shim over an identically-configured
    // engine: same bits, by construction *and* by assertion.
    server::SchedulerConfig scfg;
    server::DecodeScheduler scheduler(*model, scfg);
    const auto viaScheduler = scheduler.submit(audio).get();
    EXPECT_EQ(viaScheduler.words, want.words);
    EXPECT_EQ(viaScheduler.score, want.score);

    // AsrSystem trains its own model from the same config and seed,
    // so its (deterministic) training lands on the same weights and
    // its shimmed recognize() must reproduce the same bits.
    pipeline::AsrSystemConfig mcfg = modelConfig();
    mcfg.useAccelerator = false;
    pipeline::AsrSystem system(*net, mcfg);
    const auto viaSystem = system.recognize(audio);
    EXPECT_EQ(viaSystem.words, want.words);
    EXPECT_EQ(viaSystem.score, want.score);
}

TEST_F(ApiEngineTest, SearchBackendNameSelectsTheBackend)
{
    const frontend::AudioSignal audio = testAudio(13);

    EngineOptions viterbi;
    viterbi.searchBackend = "viterbi";
    Engine sw(*model, viterbi);
    const auto r_sw = sw.recognize(audio);

    EngineOptions baseline;
    baseline.searchBackend = "baseline";
    Engine base(*model, baseline);
    const auto r_base = base.recognize(audio);

    EngineOptions accel;
    accel.searchBackend = "accel";
    accel.runTiming = true;
    Engine hw(*model, accel);
    const auto r_hw = hw.recognize(audio);

    // The optimized and baseline software decoders are bit-identical
    // by contract; the accel agrees to float tolerance and reports
    // cycle stats.
    EXPECT_EQ(r_base.words, r_sw.words);
    EXPECT_EQ(r_base.score, r_sw.score);
    EXPECT_EQ(r_hw.words, r_sw.words);
    EXPECT_NEAR(r_hw.score, r_sw.score, 1e-3f);
    EXPECT_GT(r_hw.accelStats.cycles, 0u);
}

// ---------------------------------------------------------------------------
// Stream lifecycle edges.
// ---------------------------------------------------------------------------

TEST_F(ApiEngineTest, CancelMidUtteranceAbandonsOnlyThatStream)
{
    const frontend::AudioSignal audio = testAudio(17);
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        const auto reference = engine.recognize(audio);

        const StreamHandle doomed = engine.open();
        const StreamHandle kept = engine.open();
        const std::vector<float> &s = audio.samples;
        // Feed both halfway, then cancel one mid-utterance.
        std::size_t base = 0;
        for (; base < s.size() / 2; base += 160) {
            const std::size_t len =
                std::min<std::size_t>(160, s.size() - base);
            EXPECT_TRUE(engine.push(
                doomed,
                std::span<const float>(s.data() + base, len)));
            EXPECT_TRUE(engine.push(
                kept, std::span<const float>(s.data() + base, len)));
        }
        EXPECT_TRUE(engine.cancel(doomed));
        EXPECT_EQ(engine.state(doomed), StreamState::Cancelled);
        // Cancelled means cancelled: no push, no second cancel, and
        // a late finish() degrades to an invalid future.
        EXPECT_FALSE(engine.push(doomed, s));
        EXPECT_FALSE(engine.cancel(doomed));
        EXPECT_FALSE(engine.finish(doomed).valid());

        // The surviving stream is unaffected: finish feeding and it
        // must land on the reference bits.
        for (; base < s.size(); base += 160) {
            const std::size_t len =
                std::min<std::size_t>(160, s.size() - base);
            EXPECT_TRUE(engine.push(
                kept, std::span<const float>(s.data() + base, len)));
        }
        const auto survived = engine.finish(kept).get();
        EXPECT_EQ(survived.words, reference.words) << batched;
        EXPECT_EQ(survived.score, reference.score) << batched;
        EXPECT_EQ(engine.state(kept), StreamState::Done);

        // And the engine still serves one-shots afterwards.
        const auto after = engine.recognize(audio);
        EXPECT_EQ(after.words, reference.words);
    }
}

TEST_F(ApiEngineTest, PushAfterFinishIsRejected)
{
    EngineOptions opts;
    Engine engine(*model, opts);
    const frontend::AudioSignal audio = testAudio(19);

    const StreamHandle h = engine.open();
    EXPECT_TRUE(engine.push(h, audio.samples));
    auto future = engine.finish(h);
    // From the moment finish() returns, the stream no longer accepts
    // audio -- even while the tail is still decoding.
    EXPECT_FALSE(engine.push(h, audio.samples));
    const auto r = future.get();
    EXPECT_FALSE(engine.push(h, audio.samples));
    EXPECT_EQ(engine.state(h), StreamState::Done);
    EXPECT_GT(r.audioSeconds, 0.0);
    // Cancel and a second finish after finish are too late, and
    // unknown handles are rejected, not crashed on.
    EXPECT_FALSE(engine.cancel(h));
    EXPECT_FALSE(engine.finish(h).valid());
    EXPECT_FALSE(engine.push(StreamHandle{987654}, audio.samples));
    EXPECT_TRUE(engine.partial(StreamHandle{987654}).empty());
    EXPECT_FALSE(engine.finish(StreamHandle{987654}).valid());
}

TEST_F(ApiEngineTest, ZeroFrameStream)
{
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        // finish() immediately after open(): no audio at all.
        const StreamHandle empty = engine.open();
        const auto r = engine.finish(empty).get();
        EXPECT_TRUE(r.words.empty());
        EXPECT_EQ(r.audioSeconds, 0.0);

        // A push shorter than one analysis window: zero frames too.
        const StreamHandle tiny = engine.open();
        const std::vector<float> blip(399, 0.01f);
        EXPECT_TRUE(engine.push(tiny, blip));
        const auto r2 = engine.finish(tiny).get();
        EXPECT_TRUE(r2.words.empty());
        EXPECT_GT(r2.audioSeconds, 0.0);
    }
}

TEST_F(ApiEngineTest, DestructionCancelsOpenStreams)
{
    // Both scheduling modes: per-session (a dedicated worker parked
    // on the stream's condvar) and batch (coordinator + stage
    // workers mid-tick on the cancelled sessions -- the shutdown
    // ordering that once could deadlock the destructor's join() when
    // stage workers honoured stageStop with a generation pending).
    const frontend::AudioSignal audio = testAudio(23);
    for (const bool batched : {false, true}) {
        // Destroy while streams are Open with work still queued: the
        // engine is mid-decode (batch mode: mid-tick) when the
        // destructor cancels them, so drain() has nothing to wait
        // for and shutdown races the in-flight stage machinery.
        EngineOptions opts;
        opts.numThreads = 3;
        opts.batchScoring = batched;
        {
            Engine engine(*model, opts);
            const StreamHandle open1 = engine.open();
            const StreamHandle open2 = engine.open();
            const std::vector<float> &s = audio.samples;
            for (std::size_t base = 0; base < s.size(); base += 160) {
                const std::size_t len =
                    std::min<std::size_t>(160, s.size() - base);
                EXPECT_TRUE(engine.push(
                    open1,
                    std::span<const float>(s.data() + base, len)));
                EXPECT_TRUE(engine.push(
                    open2,
                    std::span<const float>(s.data() + base, len)));
            }
            // No finish(): the destructor must cancel both, not hang.
        }

        // And with a Finishing stream alongside an Open one: drain()
        // must wait for (only) the finishing stream's result, which
        // stays valid across destruction.
        std::future<pipeline::RecognitionResult> finishing;
        {
            Engine engine(*model, opts);
            const StreamHandle open1 = engine.open();
            const StreamHandle open2 = engine.open();
            EXPECT_TRUE(engine.push(open1, audio.samples));
            EXPECT_TRUE(engine.push(open2, audio.samples));
            finishing = engine.finish(open2);
        }
        ASSERT_TRUE(finishing.valid()) << "batched " << batched;
        const auto r = finishing.get();
        EXPECT_GT(r.audioSeconds, 0.0) << "batched " << batched;
    }
}

TEST_F(ApiEngineTest, OpenBeyondPerSessionCapacityIsRejected)
{
    // Per-session mode dedicates one worker per live stream; the
    // stream that would exceed the pool gets an invalid handle (a
    // recoverable condition for a server shedding load, not process
    // death), and every operation on it degrades cleanly.
    EngineOptions opts;
    opts.numThreads = 2;
    Engine engine(*model, opts);
    const frontend::AudioSignal audio = testAudio(43);

    const StreamHandle a = engine.open();
    const StreamHandle b = engine.open();
    EXPECT_NE(a.value, 0u);
    EXPECT_NE(b.value, 0u);
    const StreamHandle overflow = engine.open();
    EXPECT_EQ(overflow.value, 0u);
    EXPECT_FALSE(engine.push(overflow, audio.samples));
    EXPECT_FALSE(engine.finish(overflow).valid());
    EXPECT_FALSE(engine.cancel(overflow));

    // Retiring a stream frees its slot for a fresh open().
    EXPECT_TRUE(engine.cancel(a));
    const StreamHandle reopened = engine.open();
    EXPECT_NE(reopened.value, 0u);
    EXPECT_TRUE(engine.push(reopened, audio.samples));
    const auto r = engine.finish(reopened).get();
    EXPECT_GT(r.audioSeconds, 0.0);
    EXPECT_TRUE(engine.cancel(b));
}

TEST_F(ApiEngineTest, InvalidHandleContractCoversEveryAccessor)
{
    // The documented StreamHandle contract (engine.hh): value 0 is
    // never issued, and every accessor degrades cleanly on invalid,
    // never-issued, or terminal handles -- in both engine modes.
    const frontend::AudioSignal audio = testAudio(61, 3);
    for (const bool batched : {false, true}) {
        SCOPED_TRACE(batched ? "batch" : "per-session");
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        const StreamHandle defaulted;  // value == 0
        StreamHandle garbage;
        garbage.value = 0xDEADBEEFull;  // never issued
        for (const StreamHandle h : {defaulted, garbage}) {
            EXPECT_FALSE(engine.push(h, audio.samples));
            EXPECT_TRUE(engine.partial(h).empty());
            EXPECT_FALSE(engine.finish(h).valid());
            EXPECT_FALSE(engine.cancel(h));
            EXPECT_EQ(engine.state(h), StreamState::Done);
        }
        // The rejected finish() attempts above must not have leaked
        // outstanding-result accounting: drain() returns.
        engine.drain();

        // A finished (terminal but still-tracked) handle: same
        // degradation for mutators, state stays queryable.
        const StreamHandle done = engine.open();
        ASSERT_NE(done.value, 0u);
        EXPECT_TRUE(engine.push(done, audio.samples));
        ASSERT_TRUE(engine.finish(done).valid());
        engine.drain();
        EXPECT_EQ(engine.state(done), StreamState::Done);
        EXPECT_FALSE(engine.push(done, audio.samples));
        EXPECT_FALSE(engine.finish(done).valid());
        EXPECT_FALSE(engine.cancel(done));
        engine.drain();
    }
}

TEST_F(ApiEngineTest, OpenStatusDistinguishesFailures)
{
    // The two open() rejections need different remedies -- Capacity
    // clears when a slot frees, InvalidOptions never does -- so a
    // server shedding load must be able to tell them apart without
    // parsing log text.
    EngineOptions opts;
    opts.numThreads = 1;
    Engine engine(*model, opts);

    api::OpenStatus status = api::OpenStatus::InvalidOptions;
    const StreamHandle a = engine.open(api::StreamOptions(), status);
    ASSERT_NE(a.value, 0u);
    EXPECT_EQ(status, api::OpenStatus::Ok);

    // Per-session mode with one worker: the next open is Capacity,
    // and recoverably so.
    const StreamHandle overflow =
        engine.open(api::StreamOptions(), status);
    EXPECT_EQ(overflow.value, 0u);
    EXPECT_EQ(status, api::OpenStatus::Capacity);
    EXPECT_TRUE(engine.cancel(a));
    const StreamHandle retried =
        engine.open(api::StreamOptions(), status);
    EXPECT_NE(retried.value, 0u);
    EXPECT_EQ(status, api::OpenStatus::Ok);
    EXPECT_TRUE(engine.cancel(retried));

    // Structurally bad options are permanent, not capacity: wake-word
    // gating without the endpointer it requires...
    api::StreamOptions gated;
    gated.wakeWord.assign(1600, 0.0f);
    const StreamHandle bad1 = engine.open(gated, status);
    EXPECT_EQ(bad1.value, 0u);
    EXPECT_EQ(status, api::OpenStatus::InvalidOptions);

    // ...and an endpointer detector that names no registered VAD.
    api::StreamOptions unknown;
    unknown.autoEndpoint = true;
    unknown.endpoint.detector = "no-such-detector";
    const StreamHandle bad2 = engine.open(unknown, status);
    EXPECT_EQ(bad2.value, 0u);
    EXPECT_EQ(status, api::OpenStatus::InvalidOptions);

    // The one-argument open() keeps its historical contract.
    const StreamHandle shim = engine.open();
    EXPECT_NE(shim.value, 0u);
    EXPECT_TRUE(engine.cancel(shim));
}

TEST_F(ApiEngineTest, PushForTimesOutInsteadOfBlocking)
{
    // An event loop cannot afford push()'s unbounded wait on a full
    // chunk queue.  Batch mode with maxBatchSessions=1 makes the
    // stall deterministic: stream A is admitted (admission is sticky
    // until a stream retires), so stream B's inbound queue never
    // drains and fills after maxQueuedChunks chunks.
    EngineOptions opts;
    opts.numThreads = 1;
    opts.batchScoring = true;
    opts.maxBatchSessions = 1;
    opts.maxQueuedChunks = 4;
    Engine engine(*model, opts);
    const frontend::AudioSignal audio = testAudio(83);
    const std::span<const float> chunk(audio.samples.data(), 160);

    const StreamHandle a = engine.open();
    const StreamHandle b = engine.open();
    ASSERT_NE(a.value, 0u);
    ASSERT_NE(b.value, 0u);

    using api::PushResult;
    for (unsigned i = 0; i < 4; ++i)
        ASSERT_EQ(engine.pushFor(b, chunk,
                                 std::chrono::milliseconds(0)),
                  PushResult::Ok)
            << "chunk " << i;
    // Queue full: a zero-wait push and a bounded-wait push both
    // report WouldBlock -- promptly, without queueing the chunk.
    EXPECT_EQ(engine.pushFor(b, chunk, std::chrono::nanoseconds(0)),
              PushResult::WouldBlock);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(engine.pushFor(b, chunk,
                             std::chrono::milliseconds(10)),
              PushResult::WouldBlock);
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(5));
    EXPECT_EQ(engine.state(b), StreamState::Open);

    // Retiring A admits B; its queue drains and the same push
    // succeeds -- WouldBlock marked a moment, not the stream.
    EXPECT_TRUE(engine.cancel(a));
    EXPECT_EQ(engine.pushFor(b, chunk, std::chrono::seconds(30)),
              PushResult::Ok);
    const auto result = engine.finish(b).get();
    EXPECT_GT(result.audioSeconds, 0.0);

    // Terminal and never-issued handles are Rejected, not
    // WouldBlock: retrying would never help.
    EXPECT_EQ(engine.pushFor(b, chunk, std::chrono::nanoseconds(0)),
              PushResult::Rejected);
    StreamHandle garbage;
    garbage.value = 0xDEADBEEFull;
    EXPECT_EQ(engine.pushFor(garbage, chunk,
                             std::chrono::nanoseconds(0)),
              PushResult::Rejected);
}

TEST_F(ApiEngineTest, EvictedHandleNeverAliasesALaterStream)
{
    // Eviction audit: retired handles leave the state() map (bounded
    // by EngineOptions::retiredHandleCap), so a stale handle held
    // past the window must degrade cleanly -- and must never alias a
    // younger stream.  Handle values are a monotonic counter, never
    // recycled, which this test pins down.
    const frontend::AudioSignal audio = testAudio(97, 3);
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    opts.retiredHandleCap = 4;
    Engine engine(*model, opts);

    std::vector<StreamHandle> handles;
    for (unsigned u = 0; u < 12; ++u) {
        const StreamHandle h = engine.open();
        ASSERT_NE(h.value, 0u);
        if (!handles.empty()) {
            EXPECT_GT(h.value, handles.back().value)
                << "handle values must be strictly increasing";
        }
        handles.push_back(h);
        EXPECT_TRUE(engine.push(h, audio.samples));
        ASSERT_TRUE(engine.finish(h).valid());
        engine.drain();
    }

    // The oldest handles are far outside the 4-entry retention
    // window; every accessor degrades exactly like a never-issued
    // handle, with no crosstalk into live streams.
    const StreamHandle live = engine.open();
    ASSERT_NE(live.value, 0u);
    for (unsigned u = 0; u < 4; ++u) {
        const StreamHandle stale = handles[u];
        EXPECT_NE(stale.value, live.value);
        EXPECT_FALSE(engine.push(stale, audio.samples));
        EXPECT_TRUE(engine.partial(stale).empty());
        EXPECT_FALSE(engine.finish(stale).valid());
        EXPECT_FALSE(engine.cancel(stale));
        EXPECT_EQ(engine.state(stale), StreamState::Done);
    }
    // The live stream is untouched by the stale traffic.
    EXPECT_EQ(engine.state(live), StreamState::Open);
    EXPECT_TRUE(engine.push(live, audio.samples));
    const auto result = engine.finish(live).get();
    EXPECT_GT(result.audioSeconds, 0.0);
}

TEST_F(ApiEngineTest, CancelWhileQueuedInBatchMode)
{
    // Streams cancelled right after open() race the coordinator's
    // admission: whichever side wins, the coordinator must retire
    // them without building (or with discarding) a session and stay
    // healthy for real work.
    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    for (int i = 0; i < 32; ++i) {
        const StreamHandle h = engine.open();
        EXPECT_TRUE(engine.cancel(h));
        EXPECT_EQ(engine.state(h), StreamState::Cancelled);
    }
    const frontend::AudioSignal audio = testAudio(47);
    const auto r = engine.recognize(audio);
    EXPECT_GT(r.audioSeconds, 0.0);
    EXPECT_EQ(engine.stats().utterances, 1u);
}

// ---------------------------------------------------------------------------
// Live streams x batch scoring x concurrency.
// ---------------------------------------------------------------------------

TEST_F(ApiEngineTest, LiveStreamsReachTheBatchScorer)
{
    // The acceptance gate of the unified API: two concurrent live
    // clients must coalesce into cross-session GEMM batches (mean
    // batch rows > 1), while reproducing the per-session bits.
    const frontend::AudioSignal a = testAudio(29);
    const frontend::AudioSignal b = testAudio(31);

    EngineOptions plain;
    Engine ref(*model, plain);
    const auto want_a = ref.recognize(a);
    const auto want_b = ref.recognize(b);

    EngineOptions opts;
    opts.numThreads = 2;
    opts.batchScoring = true;
    Engine engine(*model, opts);
    const StreamHandle ha = engine.open();
    const StreamHandle hb = engine.open();
    const std::size_t steps =
        std::max(a.samples.size(), b.samples.size());
    for (std::size_t base = 0; base < steps; base += 160) {
        if (base < a.samples.size())
            engine.push(ha, std::span<const float>(
                                a.samples.data() + base,
                                std::min<std::size_t>(
                                    160, a.samples.size() - base)));
        if (base < b.samples.size())
            engine.push(hb, std::span<const float>(
                                b.samples.data() + base,
                                std::min<std::size_t>(
                                    160, b.samples.size() - base)));
    }
    auto fa = engine.finish(ha);
    auto fb = engine.finish(hb);
    const auto got_a = fa.get();
    const auto got_b = fb.get();

    EXPECT_EQ(got_a.words, want_a.words);
    EXPECT_EQ(got_a.score, want_a.score);
    EXPECT_EQ(got_b.words, want_b.words);
    EXPECT_EQ(got_b.score, want_b.score);

    const auto snap = engine.stats();
    EXPECT_GT(snap.dnnBatches, 0u);
    EXPECT_GT(snap.dnnMeanBatchRows(), 1.0)
        << "live streams did not coalesce into the batch scorer";
}

TEST_F(ApiEngineTest, EightInterleavedLiveStreams)
{
    // >= 8 concurrent live clients over a 3-thread batched engine:
    // interleaved pushes from client threads, partial polling from
    // the driver, per-stream results bit-identical to solo decodes.
    constexpr unsigned kStreams = 8;
    std::vector<frontend::AudioSignal> corpus;
    for (unsigned u = 0; u < kStreams; ++u)
        corpus.push_back(testAudio(200 + u, 4 + u % 3));

    EngineOptions plain;
    Engine ref(*model, plain);
    std::vector<pipeline::RecognitionResult> want;
    for (unsigned u = 0; u < kStreams; ++u)
        want.push_back(ref.recognize(corpus[u]));

    EngineOptions opts;
    opts.numThreads = 3;
    opts.batchScoring = true;
    Engine engine(*model, opts);

    std::vector<StreamHandle> handles(kStreams);
    for (unsigned u = 0; u < kStreams; ++u)
        handles[u] = engine.open();

    // One pusher thread per stream, all racing.
    std::vector<std::thread> pushers;
    for (unsigned u = 0; u < kStreams; ++u) {
        pushers.emplace_back([&, u] {
            const std::vector<float> &s = corpus[u].samples;
            const std::size_t chunk = 160 + 16 * u;  // vary shapes
            for (std::size_t base = 0; base < s.size();
                 base += chunk) {
                const std::size_t len =
                    std::min(chunk, s.size() - base);
                EXPECT_TRUE(engine.push(
                    handles[u],
                    std::span<const float>(s.data() + base, len)));
            }
        });
    }
    // Poll interleaved partials while the pushers run.
    for (int poll = 0; poll < 50; ++poll)
        for (unsigned u = 0; u < kStreams; ++u)
            (void)engine.partial(handles[u]);
    for (std::thread &t : pushers)
        t.join();

    std::vector<std::future<pipeline::RecognitionResult>> futures;
    for (unsigned u = 0; u < kStreams; ++u)
        futures.push_back(engine.finish(handles[u]));
    for (unsigned u = 0; u < kStreams; ++u) {
        const auto got = futures[u].get();
        EXPECT_EQ(got.words, want[u].words) << "stream " << u;
        EXPECT_EQ(got.score, want[u].score) << "stream " << u;
        EXPECT_EQ(got.sessionId, handles[u].value - 1);
    }

    const auto snap = engine.stats();
    EXPECT_EQ(snap.utterances, kStreams);
    EXPECT_GT(snap.dnnMeanBatchRows(), 1.0);
    // Every stream that produced words showed a first partial.
    EXPECT_GT(snap.firstPartials, 0u);
}

TEST_F(ApiEngineTest, PartialCallbacksFireOnChange)
{
    const frontend::AudioSignal audio = testAudio(37, 8);
    EngineOptions opts;
    Engine engine(*model, opts);

    std::atomic<unsigned> calls{0};
    std::vector<wfst::WordId> last;
    std::mutex lastMu;
    api::StreamOptions sopts;
    sopts.onPartial = [&](const std::vector<wfst::WordId> &words) {
        ++calls;
        std::lock_guard<std::mutex> lock(lastMu);
        last = words;
    };
    const StreamHandle h = engine.open(sopts);
    const std::vector<float> &s = audio.samples;
    for (std::size_t base = 0; base < s.size(); base += 160) {
        const std::size_t len =
            std::min<std::size_t>(160, s.size() - base);
        engine.push(h,
                    std::span<const float>(s.data() + base, len));
    }
    const auto r = engine.finish(h).get();
    if (!r.words.empty()) {
        EXPECT_GT(calls.load(), 0u);
        // The last published partial is a plausible prefix-ish of
        // the final hypothesis: at minimum, non-empty.
        std::lock_guard<std::mutex> lock(lastMu);
        EXPECT_FALSE(last.empty());
    }

    const auto snap = engine.stats();
    EXPECT_EQ(snap.firstPartials, r.words.empty() ? 0u : 1u);
    if (snap.firstPartials > 0) {
        EXPECT_GE(snap.firstPartialP99Ms, snap.firstPartialP50Ms);
        EXPECT_NE(snap.render().find("first partial"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Options validation.
// ---------------------------------------------------------------------------

TEST_F(ApiEngineTest, ValidateRejectsUnknownBackendsListingKnown)
{
    EngineOptions opts;
    EXPECT_TRUE(opts.validate().empty());

    opts.searchBackend = "warp-speed";
    const std::string searchErr = opts.validate();
    ASSERT_FALSE(searchErr.empty());
    EXPECT_NE(searchErr.find("warp-speed"), std::string::npos);
    for (const char *name : {"viterbi", "baseline", "accel"})
        EXPECT_NE(searchErr.find(name), std::string::npos) << name;

    opts.searchBackend = "viterbi";
    opts.acousticBackend = "float128";
    const std::string acousticErr = opts.validate();
    ASSERT_FALSE(acousticErr.empty());
    EXPECT_NE(acousticErr.find("float128"), std::string::npos);
    for (const char *name : {"reference", "blocked", "int8"})
        EXPECT_NE(acousticErr.find(name), std::string::npos) << name;

    opts.acousticBackend = "blocked";
    EXPECT_TRUE(opts.validate().empty());

    // The legacy switch resolves through the same validation.
    EngineOptions legacy;
    legacy.useAccelerator = true;
    EXPECT_EQ(legacy.effectiveSearchBackend(), "accel");
    EXPECT_TRUE(legacy.validate().empty());
}

TEST_F(ApiEngineTest, StatsAndDrainCoverAllEntryStyles)
{
    EngineOptions opts;
    opts.numThreads = 2;
    Engine engine(*model, opts);

    const frontend::AudioSignal audio = testAudio(41);
    auto f1 = engine.submit(audio);
    const StreamHandle h = engine.open();
    engine.push(h, audio.samples);
    auto f2 = engine.finish(h);
    f1.get();
    f2.get();
    engine.drain();

    const auto snap = engine.stats();
    EXPECT_EQ(snap.utterances, 2u);
    EXPECT_EQ(engine.submittedCount(), 2u);
    EXPECT_GT(snap.audioSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Deadline watchdog.
// ---------------------------------------------------------------------------

TEST_F(ApiEngineTest, DeadlineForeclosesAnAbandonedOpenStream)
{
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        api::StreamOptions sopts;
        sopts.deadlineMs = 40;
        const StreamHandle h = engine.open(sopts);
        const frontend::AudioSignal audio = testAudio(103, 3);
        engine.push(h, std::span<const float>(audio.samples.data(),
                                              1600));

        // Abandoned: no finish() ever comes.  The watchdog must
        // foreclose it like a cancel, marked as a deadline.
        const auto give_up = std::chrono::steady_clock::now() +
                             std::chrono::seconds(10);
        while (engine.state(h) == StreamState::Open &&
               std::chrono::steady_clock::now() < give_up)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_EQ(engine.state(h), StreamState::Cancelled)
            << "batched=" << batched;
        EXPECT_TRUE(engine.deadlineExpired(h));
        EXPECT_FALSE(engine.push(h, audio.samples));
        EXPECT_GE(engine.stats().deadlinesExpired, 1u);
        engine.drain();
    }
}

TEST_F(ApiEngineTest, PromptFinishBeatsItsDeadline)
{
    const frontend::AudioSignal audio = testAudio(107);
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;

        // Reference without a deadline (fresh engine: session id 0).
        pipeline::RecognitionResult want;
        {
            Engine reference(*model, opts);
            want = reference.recognize(audio);
        }

        Engine engine(*model, opts);
        api::StreamOptions sopts;
        sopts.deadlineMs = 60'000;  // cannot plausibly expire
        const StreamHandle h = engine.open(sopts);
        engine.push(h, audio.samples);
        const pipeline::RecognitionResult got = engine.finish(h).get();
        EXPECT_EQ(got.words, want.words) << "batched=" << batched;
        EXPECT_EQ(got.score, want.score);
        EXPECT_FALSE(engine.deadlineExpired(h));
        EXPECT_EQ(engine.stats().deadlinesExpired, 0u);
    }
}

TEST_F(ApiEngineTest, DeadlineBoundsTheFinishWait)
{
    // A finish() racing its own deadline resolves either way: the
    // decode wins (real result) or the watchdog wins (empty result,
    // stream marked expired).  Either is legal; an unresolved future
    // or a wedge is not.
    const frontend::AudioSignal audio = testAudio(109, 8);
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        api::StreamOptions sopts;
        sopts.deadlineMs = 2;  // tighter than a full decode
        const StreamHandle h = engine.open(sopts);
        engine.push(h, std::span<const float>(audio.samples.data(),
                                              1600));
        auto future = engine.finish(h);
        ASSERT_TRUE(future.valid());
        ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
                  std::future_status::ready)
            << "batched=" << batched;
        const pipeline::RecognitionResult result = future.get();
        if (engine.deadlineExpired(h)) {
            EXPECT_TRUE(result.words.empty());
        }
        engine.drain();
    }
}

TEST_F(ApiEngineTest, CancelDeadlineFinishRaceNeverWedges)
{
    // Three-way race on every stream: a pusher/finisher thread, a
    // cancelling thread, and the deadline watchdog, with budgets of
    // 1..20 ms straddling the decode time.  Any interleaving of the
    // three terminations is legal; the assertions are that every
    // valid finish future resolves, terminal states are consistent,
    // and drain() completes (no slot leaks, no wedge).  The
    // concurrency label runs this under TSan in CI.
    constexpr unsigned kStreams = 24;
    const frontend::AudioSignal audio = testAudio(113, 4);
    for (const bool batched : {false, true}) {
        EngineOptions opts;
        opts.numThreads = 3;
        opts.batchScoring = batched;
        Engine engine(*model, opts);

        // Per-session mode caps concurrent streams at numThreads, so
        // run the 24 racing streams in waves of the mode's capacity.
        const unsigned wave = batched ? kStreams : opts.numThreads;
        for (unsigned base = 0; base < kStreams; base += wave) {
            const unsigned n = std::min(wave, kStreams - base);
            std::vector<StreamHandle> handles(n);
            for (unsigned i = 0; i < n; ++i) {
                api::StreamOptions sopts;
                sopts.deadlineMs = 1 + (base + i) % 20;
                handles[i] = engine.open(sopts);
                ASSERT_NE(handles[i].value, 0u)
                    << "batched=" << batched;
            }

            std::vector<std::future<pipeline::RecognitionResult>>
                futures(n);
            std::thread finisher([&] {
                for (unsigned i = 0; i < n; ++i) {
                    engine.push(
                        handles[i],
                        std::span<const float>(audio.samples.data(),
                                               1600));
                    if (i % 3 != 2)
                        futures[i] = engine.finish(handles[i]);
                }
            });
            std::thread canceller([&] {
                for (unsigned i = 0; i < n; ++i) {
                    if (i % 2 == 0)
                        engine.cancel(handles[i]);
                    if (i % 5 == 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                }
            });
            finisher.join();
            canceller.join();

            for (unsigned i = 0; i < n; ++i) {
                if (!futures[i].valid())
                    continue;
                ASSERT_EQ(
                    futures[i].wait_for(std::chrono::seconds(10)),
                    std::future_status::ready)
                    << "stream " << base + i
                    << " batched=" << batched;
                futures[i].get();
            }
            // Every stream must leave Open -- by cancel, finish, or
            // its deadline (at most 20 ms out); waiting also frees
            // the per-session slots for the next wave.
            const auto give_up = std::chrono::steady_clock::now() +
                                 std::chrono::seconds(10);
            for (unsigned i = 0; i < n; ++i) {
                while (engine.state(handles[i]) == StreamState::Open &&
                       std::chrono::steady_clock::now() < give_up)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                EXPECT_NE(engine.state(handles[i]),
                          StreamState::Open)
                    << base + i << " batched=" << batched;
            }
        }
        engine.drain();
    }
}
