/**
 * @file
 * Tests for cross-session batched DNN scoring (the scheduler's batch
 * mode + server::BatchScorer): per-utterance results must be
 * bit-identical to per-session inline scoring for any thread count
 * and any batch-session cap, the deferred-session protocol must
 * round-trip by hand, and the engine must actually coalesce frames
 * (mean batch > 1 with many concurrent sessions).
 */

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pipeline/model.hh"
#include "server/batch_scorer.hh"
#include "server/scheduler.hh"
#include "server/session.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::server;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

class ServerBatchTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2026;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));

        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 47;
        model = new pipeline::AsrModel(*net, mcfg);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    static frontend::AudioSignal
    testAudio(std::uint64_t seed, unsigned phones = 6)
    {
        Rng rng(seed);
        std::vector<std::uint32_t> seq;
        for (unsigned i = 0; i < phones; ++i)
            seq.push_back(1 + std::uint32_t(rng.below(kPhonemes)));
        return model->synthesizer().synthesize(seq, 3);
    }

    /** Run @p corpus through a scheduler and collect the results. */
    static std::vector<pipeline::RecognitionResult>
    runEngine(const SchedulerConfig &cfg,
              const std::vector<frontend::AudioSignal> &corpus,
              EngineSnapshot *snap = nullptr)
    {
        DecodeScheduler engine(*model, cfg);
        std::vector<std::future<pipeline::RecognitionResult>> futures;
        futures.reserve(corpus.size());
        for (const auto &audio : corpus)
            futures.push_back(engine.submit(audio));
        std::vector<pipeline::RecognitionResult> results;
        results.reserve(futures.size());
        for (auto &f : futures)
            results.push_back(f.get());
        if (snap) {
            engine.drain();
            *snap = engine.stats();
        }
        return results;
    }

    static std::vector<frontend::AudioSignal>
    corpus(unsigned count)
    {
        std::vector<frontend::AudioSignal> out;
        out.reserve(count);
        for (unsigned u = 0; u < count; ++u)
            out.push_back(testAudio(100 + u));
        return out;
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *ServerBatchTest::net = nullptr;
pipeline::AsrModel *ServerBatchTest::model = nullptr;

} // namespace

TEST_F(ServerBatchTest, BatchModeMatchesPerSessionExactly)
{
    const auto audios = corpus(10);

    SchedulerConfig plain;
    plain.numThreads = 1;
    plain.baseSeed = 11;
    const auto ref = runEngine(plain, audios);

    SchedulerConfig batched = plain;
    batched.batchScoring = true;
    const auto got = runEngine(batched, audios);

    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t u = 0; u < ref.size(); ++u) {
        EXPECT_EQ(ref[u].words, got[u].words) << "utterance " << u;
        EXPECT_EQ(ref[u].score, got[u].score) << "utterance " << u;
        EXPECT_EQ(ref[u].sessionId, got[u].sessionId);
    }
}

TEST_F(ServerBatchTest, ThreadCountDoesNotChangeBatchModeResults)
{
    const auto audios = corpus(8);
    std::vector<std::vector<wfst::WordId>> refWords;
    std::vector<wfst::LogProb> refScores;
    for (unsigned threads : {1u, 2u, 4u}) {
        SchedulerConfig cfg;
        cfg.numThreads = threads;
        cfg.baseSeed = 3;
        cfg.batchScoring = true;
        cfg.ditherAmplitude = 1e-4f;  // exercise per-session RNG too
        const auto results = runEngine(cfg, audios);
        if (threads == 1) {
            for (const auto &r : results) {
                refWords.push_back(r.words);
                refScores.push_back(r.score);
            }
            continue;
        }
        for (std::size_t u = 0; u < results.size(); ++u) {
            EXPECT_EQ(results[u].words, refWords[u])
                << threads << " threads, utterance " << u;
            EXPECT_EQ(results[u].score, refScores[u])
                << threads << " threads, utterance " << u;
        }
    }
}

TEST_F(ServerBatchTest, SessionCapDoesNotChangeResults)
{
    const auto audios = corpus(9);
    SchedulerConfig cfg;
    cfg.numThreads = 2;
    cfg.baseSeed = 5;
    cfg.batchScoring = true;
    cfg.maxBatchSessions = 32;
    const auto wide = runEngine(cfg, audios);
    cfg.maxBatchSessions = 2;  // forces several admission waves
    const auto narrow = runEngine(cfg, audios);
    ASSERT_EQ(wide.size(), narrow.size());
    for (std::size_t u = 0; u < wide.size(); ++u) {
        EXPECT_EQ(wide[u].words, narrow[u].words);
        EXPECT_EQ(wide[u].score, narrow[u].score);
    }
}

TEST_F(ServerBatchTest, CoalescesFramesAcrossSessions)
{
    const auto audios = corpus(8);
    SchedulerConfig cfg;
    cfg.numThreads = 1;
    cfg.batchScoring = true;
    EngineSnapshot snap;
    runEngine(cfg, audios, &snap);
    EXPECT_EQ(snap.utterances, 8u);
    EXPECT_GT(snap.dnnBatches, 0u);
    EXPECT_GT(snap.dnnBatchedFrames, 0u);
    // With 8 sessions in flight the steady-state tick scores ~8
    // frames per pass; even with ramp-up/drain ticks the mean must
    // be well above per-frame scoring.
    EXPECT_GT(snap.dnnMeanBatchRows(), 2.0);
    EXPECT_GE(snap.dnnMaxBatchRows, 8.0);
}

TEST_F(ServerBatchTest, ZeroLengthAndTinyAudio)
{
    std::vector<frontend::AudioSignal> audios;
    frontend::AudioSignal empty;
    empty.sampleRate = model->mfcc().config().sampleRate;
    audios.push_back(empty);                  // zero samples
    frontend::AudioSignal tiny = testAudio(1);
    tiny.samples.resize(100);                 // shorter than a window
    audios.push_back(tiny);
    audios.push_back(testAudio(2));           // a normal utterance

    SchedulerConfig plain;
    plain.numThreads = 1;
    const auto ref = runEngine(plain, audios);

    SchedulerConfig batched = plain;
    batched.batchScoring = true;
    const auto got = runEngine(batched, audios);

    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(got[0].words.empty());
    for (std::size_t u = 0; u < ref.size(); ++u) {
        EXPECT_EQ(ref[u].words, got[u].words);
        EXPECT_EQ(ref[u].score, got[u].score);
    }
}

TEST_F(ServerBatchTest, DeferredProtocolRoundTripsByHand)
{
    // Drive one deferred session directly through the BatchScorer
    // and check it against a plain inline session.
    const frontend::AudioSignal audio = testAudio(42);

    SessionConfig inlineCfg;
    inlineCfg.id = 7;
    StreamingSession inlineSession(*model, inlineCfg);
    inlineSession.pushAudio(audio.samples);
    const auto want = inlineSession.finish();

    SessionConfig deferCfg = inlineCfg;
    deferCfg.deferScoring = true;
    StreamingSession deferred(*model, deferCfg);
    BatchScorer scorer(*model);
    StreamingSession *sessions[] = {&deferred};

    const auto drainPending = [&] {
        if (scorer.score(sessions) > 0)
            deferred.consumePendingScores(scorer.scores(),
                                          scorer.base(0),
                                          scorer.secondsShare(0));
    };
    for (std::size_t base = 0; base < audio.samples.size();
         base += 160) {
        const std::size_t len =
            std::min<std::size_t>(160, audio.samples.size() - base);
        deferred.pushAudio(std::span<const float>(
            audio.samples.data() + base, len));
        drainPending();
    }
    deferred.flushPending();
    drainPending();
    const auto got = deferred.finalizeFinish();

    EXPECT_EQ(want.words, got.words);
    EXPECT_EQ(want.score, got.score);
    EXPECT_EQ(want.audioSeconds, got.audioSeconds);
}

TEST_F(ServerBatchTest, AcceleratorBackendInBatchMode)
{
    // Batch scoring composes with the accelerator search backend.
    const auto audios = corpus(4);
    SchedulerConfig cfg;
    cfg.numThreads = 1;
    cfg.useAccelerator = true;
    const auto ref = runEngine(cfg, audios);
    cfg.batchScoring = true;
    const auto got = runEngine(cfg, audios);
    for (std::size_t u = 0; u < ref.size(); ++u) {
        EXPECT_EQ(ref[u].words, got[u].words);
        EXPECT_EQ(ref[u].score, got[u].score);
        EXPECT_GT(got[u].accelStats.frames, 0u);
    }
}
