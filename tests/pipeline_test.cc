/**
 * @file
 * Tests for the pipeline module: corpus sampling with ground truth,
 * beam calibration, the batched system model, and the end-to-end
 * ASR facade (audio in, words out).
 */

#include <gtest/gtest.h>

#include "acoustic/scorer.hh"
#include "decoder/viterbi.hh"
#include "decoder/wer.hh"
#include "pipeline/asr_system.hh"
#include "pipeline/calibrate.hh"
#include "pipeline/corpus.hh"
#include "pipeline/system.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::pipeline;

namespace {

wfst::Wfst
makeNet(wfst::StateId states, std::uint32_t phonemes,
        std::uint64_t seed)
{
    wfst::GeneratorConfig cfg;
    cfg.numStates = states;
    cfg.numPhonemes = phonemes;
    cfg.numWords = 40;
    cfg.seed = seed;
    return wfst::generateWfst(cfg);
}

} // namespace

TEST(Corpus, UtteranceHasRequestedLength)
{
    const wfst::Wfst net = makeNet(500, 16, 3);
    CorpusConfig cfg;
    cfg.framesPerUtterance = 80;
    Rng rng(cfg.seed);
    const Utterance utt = sampleUtterance(net, cfg, rng);
    EXPECT_EQ(utt.numFrames(), 80u);
    for (auto p : utt.framePhonemes) {
        ASSERT_GE(p, 1u);
        ASSERT_LE(p, 16u);
    }
}

TEST(Corpus, DeterministicWithSeed)
{
    const wfst::Wfst net = makeNet(500, 16, 3);
    CorpusConfig cfg;
    const auto a = sampleCorpus(net, cfg, 3);
    const auto b = sampleCorpus(net, cfg, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].framePhonemes, b[i].framePhonemes);
        ASSERT_EQ(a[i].words, b[i].words);
    }
}

TEST(Corpus, TruthDrivenScoresDecodeToLowWer)
{
    // The sampled path is a real path through the WFST; with
    // strongly truth-biased acoustics the decoder must recover most
    // of the ground-truth words.  A generous phoneme inventory keeps
    // label aliasing (several arcs sharing one phoneme) rare.
    const wfst::Wfst net = makeNet(300, 256, 7);
    CorpusConfig ccfg;
    ccfg.framesPerUtterance = 80;
    Rng rng(ccfg.seed);
    const Utterance utt = sampleUtterance(net, ccfg, rng);
    ASSERT_FALSE(utt.words.empty());

    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 256;
    scfg.truthBoost = 12.0;
    scfg.seed = 5;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(
        utt.numFrames(), utt.framePhonemes);

    decoder::DecoderConfig dcfg;
    dcfg.beam = 10.0f;
    decoder::ViterbiDecoder dec(net, dcfg);
    const auto result = dec.decode(scores);

    const auto wer = decoder::scoreWer(utt.words, result.words);
    EXPECT_LT(wer.wer(), 0.4)
        << "ref " << utt.words.size() << " words, hyp "
        << result.words.size();
}

TEST(Calibrate, HitsTokenTarget)
{
    const wfst::Wfst net = makeNet(20000, 64, 11);
    acoustic::SyntheticScorerConfig scfg;
    scfg.numPhonemes = 64;
    scfg.seed = 21;
    const auto scores = acoustic::SyntheticScorer(scfg).generate(30);

    const BeamCalibration cal =
        calibrateBeam(net, scores, 500.0, 0.5f, 10.0f, 10);
    EXPECT_GT(cal.tokensPerFrame, 150.0);
    EXPECT_LT(cal.tokensPerFrame, 1500.0);
    EXPECT_GT(cal.beam, 0.5f);
}

TEST(SystemModel, SequentialVsPipelined)
{
    SystemModelInput in;
    in.numBatches = 10;
    in.dnnSecondsPerBatch = 0.02;
    in.viterbiSecondsPerBatch = 0.03;
    in.pipelined = false;
    const SystemTime seq = modelSystem(in);
    EXPECT_NEAR(seq.seconds, 0.5, 1e-9);

    in.pipelined = true;
    const SystemTime pipe = modelSystem(in);
    // dnn + 9 * max(dnn, vit) + vit = 0.02 + 0.27 + 0.03.
    EXPECT_NEAR(pipe.seconds, 0.32, 1e-9);
    EXPECT_LT(pipe.seconds, seq.seconds);
}

TEST(SystemModel, EnergyChargesBusyTimeOnly)
{
    SystemModelInput in;
    in.numBatches = 4;
    in.dnnSecondsPerBatch = 0.01;
    in.viterbiSecondsPerBatch = 0.02;
    in.gpuPowerW = 76.4;
    in.searchPowerW = 0.5;
    in.pipelined = true;
    const SystemTime t = modelSystem(in);
    EXPECT_NEAR(t.energyJ, 4 * 0.01 * 76.4 + 4 * 0.02 * 0.5, 1e-9);
}

TEST(SystemModel, PipelineSpeedupApproachesTwoWhenBalanced)
{
    // The paper's 1.87x end-to-end gain comes from overlapping two
    // nearly balanced stages.
    SystemModelInput in;
    in.numBatches = 50;
    in.dnnSecondsPerBatch = 0.02;
    in.viterbiSecondsPerBatch = 0.021;
    in.pipelined = false;
    const double seq = modelSystem(in).seconds;
    in.pipelined = true;
    const double pipe = modelSystem(in).seconds;
    EXPECT_GT(seq / pipe, 1.8);
    EXPECT_LT(seq / pipe, 2.0);
}

TEST(AsrSystem, EndToEndRecognition)
{
    // Tiny end-to-end system: build a WFST, train the acoustic
    // model on synthetic voices, recognize a synthesized utterance.
    const wfst::Wfst net = makeNet(200, 10, 2024);

    AsrSystemConfig cfg;
    cfg.numPhonemes = 10;
    cfg.hiddenLayers = {48};
    cfg.trainUtterPerPhoneme = 12;
    cfg.trainEpochs = 12;
    cfg.beam = 14.0f;
    cfg.useAccelerator = true;
    AsrSystem system(net, cfg);

    // The acoustic model must have learned the synthetic phonemes.
    EXPECT_GT(system.acousticModelAccuracy(), 0.7f);

    // Sample a true path and synthesize its audio.
    CorpusConfig ccfg;
    ccfg.framesPerUtterance = 40;
    Rng rng(5);
    const Utterance utt = sampleUtterance(net, ccfg, rng);
    std::vector<std::uint32_t> phones(utt.framePhonemes.begin(),
                                      utt.framePhonemes.end());
    const frontend::AudioSignal audio =
        system.synthesizer().synthesize(phones, 1);

    const RecognitionResult result = system.recognize(audio);
    EXPECT_GT(result.score, wfst::kLogZero);
    EXPECT_GT(result.accelStats.cycles, 0u);
    EXPECT_GE(result.searchSeconds, 0.0);
}

TEST(AsrSystem, Int8BackendWerDeltaBounded)
{
    // Quantizing the trained acoustic model to int8 may perturb
    // scores (it is exempt from the bit-identity contract) but must
    // not meaningfully hurt recognition: aggregate WER on a synthetic
    // corpus stays within a small delta of the float backend.
    const wfst::Wfst net = makeNet(250, 12, 909);
    AsrSystemConfig cfg;
    cfg.numPhonemes = 12;
    cfg.hiddenLayers = {48};
    cfg.trainUtterPerPhoneme = 12;
    cfg.trainEpochs = 12;
    cfg.beam = 14.0f;
    cfg.useAccelerator = false;
    cfg.seed = 13;
    AsrSystem system(net, cfg);
    const AsrModel &model = system.model();

    // Int8 backend over the *same* trained weights.
    const auto int8 = acoustic::Backend::create(
        acoustic::BackendKind::Int8, model.dnn());
    const acoustic::DnnScorer qscorer(*int8, model.contextFrames());

    decoder::DecoderConfig dcfg;
    dcfg.beam = cfg.beam;
    decoder::ViterbiDecoder dec(net, dcfg);

    decoder::WerResult floatWer, int8Wer;
    Rng rng(21);
    CorpusConfig ccfg;
    ccfg.framesPerUtterance = 40;
    for (unsigned u = 0; u < 6; ++u) {
        const Utterance utt = sampleUtterance(net, ccfg, rng);
        std::vector<std::uint32_t> phones(utt.framePhonemes.begin(),
                                          utt.framePhonemes.end());
        const frontend::AudioSignal audio =
            system.synthesizer().synthesize(phones, 1);
        const frontend::FeatureMatrix feats =
            model.mfcc().compute(audio);

        const auto scoreOne = [&](const acoustic::DnnScorer &scorer,
                                  decoder::WerResult &acc) {
            const auto r = dec.decode(scorer.score(feats));
            const auto w = decoder::scoreWer(utt.words, r.words);
            acc.substitutions += w.substitutions;
            acc.insertions += w.insertions;
            acc.deletions += w.deletions;
            acc.referenceLength += w.referenceLength;
        };
        scoreOne(model.scorer(), floatWer);
        scoreOne(qscorer, int8Wer);
    }
    ASSERT_GT(floatWer.referenceLength, 0u);
    EXPECT_LE(int8Wer.wer(), floatWer.wer() + 0.1)
        << "int8 WER " << int8Wer.wer() << " vs float "
        << floatWer.wer();
}

TEST(AsrSystem, SoftwareBackendAgrees)
{
    const wfst::Wfst net = makeNet(150, 8, 77);
    AsrSystemConfig cfg;
    cfg.numPhonemes = 8;
    cfg.hiddenLayers = {32};
    cfg.trainUtterPerPhoneme = 8;
    cfg.trainEpochs = 8;
    cfg.seed = 31;

    cfg.useAccelerator = true;
    AsrSystem hw(net, cfg);
    cfg.useAccelerator = false;
    AsrSystem sw(net, cfg);

    const frontend::AudioSignal audio =
        hw.synthesizer().synthesize({1, 2, 3, 4, 5}, 4);
    const auto r_hw = hw.recognize(audio);
    const auto r_sw = sw.recognize(audio);
    EXPECT_EQ(r_hw.words, r_sw.words);
    EXPECT_NEAR(r_hw.score, r_sw.score, 1e-3f);
}
