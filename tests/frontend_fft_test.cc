/**
 * @file
 * Tests for the FFT: agreement with a naive DFT, inverse round
 * trips, Parseval's identity, and the power-spectrum helper.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "frontend/fft.hh"

using namespace asr;
using namespace asr::frontend;

namespace {

std::vector<Complex>
randomSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> v(n);
    for (auto &x : v)
        x = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return v;
}

} // namespace

/** FFT equals the O(N^2) DFT for all power-of-two sizes. */
class FftVsDft : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftVsDft, MatchesNaiveDft)
{
    const std::size_t n = GetParam();
    std::vector<Complex> sig = randomSignal(n, 100 + n);
    const std::vector<Complex> expect = naiveDft(sig);
    fft(sig);
    ASSERT_EQ(sig.size(), expect.size());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(sig[i].real(), expect[i].real(), 1e-6 * n)
            << "bin " << i;
        ASSERT_NEAR(sig[i].imag(), expect[i].imag(), 1e-6 * n)
            << "bin " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsDft,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64,
                                           128, 256));

TEST(Fft, InverseRoundTrip)
{
    const std::size_t n = 512;
    const std::vector<Complex> original = randomSignal(n, 9);
    std::vector<Complex> sig = original;
    fft(sig);
    fft(sig, /*inverse=*/true);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(sig[i].real(), original[i].real(), 1e-9);
        ASSERT_NEAR(sig[i].imag(), original[i].imag(), 1e-9);
    }
}

TEST(Fft, ParsevalIdentity)
{
    const std::size_t n = 256;
    std::vector<Complex> sig = randomSignal(n, 17);
    double time_energy = 0.0;
    for (const auto &x : sig)
        time_energy += std::norm(x);
    fft(sig);
    double freq_energy = 0.0;
    for (const auto &x : sig)
        freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy / double(n), time_energy, 1e-6);
}

TEST(Fft, ImpulseIsFlat)
{
    std::vector<Complex> sig(64, Complex(0, 0));
    sig[0] = Complex(1, 0);
    fft(sig);
    for (const auto &x : sig) {
        ASSERT_NEAR(x.real(), 1.0, 1e-9);
        ASSERT_NEAR(x.imag(), 0.0, 1e-9);
    }
}

TEST(Fft, PureToneConcentratesEnergy)
{
    const std::size_t n = 512;
    std::vector<double> frame(n);
    const double bin = 37.0;
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = std::sin(2.0 * M_PI * bin * double(i) / double(n));
    const std::vector<double> power = powerSpectrum(frame, n);
    ASSERT_EQ(power.size(), n / 2 + 1);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < power.size(); ++i)
        if (power[i] > power[peak])
            peak = i;
    EXPECT_EQ(peak, 37u);
    // Nearly all energy sits in the peak bin.
    double total = 0.0;
    for (double p : power)
        total += p;
    EXPECT_GT(power[peak] / total, 0.95);
}

TEST(Fft, PowerSpectrumZeroPads)
{
    std::vector<double> frame(100, 1.0);
    const auto power = powerSpectrum(frame, 128);
    EXPECT_EQ(power.size(), 65u);
    // DC bin holds (sum of samples)^2.
    EXPECT_NEAR(power[0], 100.0 * 100.0, 1e-6);
}

TEST(FftDeath, RejectsNonPowerOfTwo)
{
    std::vector<Complex> sig(100);
    EXPECT_DEATH(fft(sig), "power of two");
}
