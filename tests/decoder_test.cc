/**
 * @file
 * Tests for the software Viterbi beam-search decoder: the Figure-2
 * worked example, agreement with brute-force full Viterbi, beam and
 * histogram pruning behaviour, and WER scoring.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "acoustic/scorer.hh"
#include "decoder/reference.hh"
#include "decoder/viterbi.hh"
#include "decoder/wer.hh"
#include "wfst/examples.hh"
#include "wfst/generate.hh"

using namespace asr;
using namespace asr::decoder;

namespace {

acoustic::AcousticLikelihoods
syntheticScores(std::uint32_t phonemes, std::size_t frames,
                std::uint64_t seed)
{
    acoustic::SyntheticScorerConfig cfg;
    cfg.numPhonemes = phonemes;
    cfg.seed = seed;
    return acoustic::SyntheticScorer(cfg).generate(frames);
}

} // namespace

TEST(Decoder, Figure2RecognizesLow)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    DecoderConfig cfg;
    cfg.beam = ex.beam;
    ViterbiDecoder dec(ex.wfst, cfg);
    const auto scores =
        acoustic::AcousticLikelihoods::fromNested(ex.frames);
    const DecodeResult r = dec.decode(scores);

    ASSERT_EQ(r.words.size(), 1u);
    EXPECT_EQ(ex.words.name(r.words[0]), "low");
    EXPECT_NEAR(r.score, ex.expectedBestScore, 1e-4f);
    EXPECT_EQ(r.bestState, 3u);
    // Figure 2c: tokens 1 and 4 are pruned away at frame 2.
    EXPECT_EQ(r.stats.tokensPruned, 2u);
    EXPECT_EQ(r.stats.framesDecoded, 3u);
}

TEST(Decoder, Figure2WideBeamKeepsEveryToken)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    DecoderConfig cfg;
    cfg.beam = 100.0f;
    ViterbiDecoder dec(ex.wfst, cfg);
    const auto scores =
        acoustic::AcousticLikelihoods::fromNested(ex.frames);
    const DecodeResult r = dec.decode(scores);
    EXPECT_EQ(r.stats.tokensPruned, 0u);
    // The answer does not change: "low" still wins.
    ASSERT_EQ(r.words.size(), 1u);
    EXPECT_EQ(ex.words.name(r.words[0]), "low");
}

TEST(Decoder, MatchesFullViterbiWithoutBeam)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 60;
        gcfg.numPhonemes = 8;
        gcfg.numWords = 15;
        gcfg.seed = seed;
        const wfst::Wfst net = wfst::generateWfst(gcfg);
        const auto scores = syntheticScores(8, 15, seed + 50);

        DecoderConfig cfg;
        cfg.beam = 1e9f;
        ViterbiDecoder dec(net, cfg);
        const DecodeResult beam_result = dec.decode(scores);
        const DecodeResult ref = fullViterbiReference(net, scores);

        EXPECT_NEAR(beam_result.score, ref.score, 1e-3f)
            << "seed " << seed;
        EXPECT_EQ(beam_result.words, ref.words) << "seed " << seed;
    }
}

TEST(Decoder, BeamMonotonicity)
{
    // A wider beam can only improve (or preserve) the best score.
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 300;
    gcfg.numPhonemes = 16;
    gcfg.seed = 123;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(16, 20, 7);

    float prev_score = -1e30f;
    std::uint64_t prev_tokens = 0;
    for (float beam : {1.0f, 2.0f, 4.0f, 8.0f}) {
        DecoderConfig cfg;
        cfg.beam = beam;
        ViterbiDecoder dec(net, cfg);
        const DecodeResult r = dec.decode(scores);
        EXPECT_GE(r.score, prev_score - 1e-4f) << "beam " << beam;
        EXPECT_GE(r.stats.tokensExpanded, prev_tokens);
        prev_score = r.score;
        prev_tokens = r.stats.tokensExpanded;
    }
}

TEST(Decoder, MaxActiveCapsExpansion)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 2000;
    gcfg.numPhonemes = 16;
    gcfg.seed = 31;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(16, 30, 9);

    DecoderConfig wide;
    wide.beam = 12.0f;
    ViterbiDecoder dec_wide(net, wide);
    const auto r_wide = dec_wide.decode(scores);

    DecoderConfig capped = wide;
    capped.maxActive = 50;
    ViterbiDecoder dec_capped(net, capped);
    const auto r_capped = dec_capped.decode(scores);

    EXPECT_LT(r_capped.stats.tokensExpanded,
              r_wide.stats.tokensExpanded);
    // The capped search still produces a hypothesis with a score no
    // better than the uncapped one.
    EXPECT_LE(r_capped.score, r_wide.score + 1e-4f);
}

TEST(Decoder, EpsilonArcsTraversedWithinFrame)
{
    // 0 --a--> 1 --eps--> 2(final); "a" then epsilon yields word w6
    // without consuming a second frame.  Final weights make the
    // epsilon-reached state win over its higher-scoring source.
    wfst::WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1, 5);
    b.addArc(1, 2, -0.2f, wfst::kEpsilonLabel, 6);
    b.setFinal(2, 0.0f);
    const wfst::Wfst net = b.build();

    acoustic::AcousticLikelihoods scores(1, 2);
    scores.frame(0)[1] = -0.5f;
    scores.frame(0)[2] = -5.0f;

    DecoderConfig cfg;
    cfg.beam = 10.0f;
    cfg.useFinalWeights = true;
    ViterbiDecoder dec(net, cfg);
    const DecodeResult r = dec.decode(scores);
    ASSERT_EQ(r.words.size(), 2u);
    EXPECT_EQ(r.words[0], 5u);
    EXPECT_EQ(r.words[1], 6u);
    EXPECT_EQ(r.bestState, 2u);
    EXPECT_NEAR(r.score, -0.1f - 0.5f - 0.2f, 1e-5f);
}

TEST(Decoder, EpsilonCycleTerminates)
{
    // Epsilon cycle 1 <-> 2 with negative weights must terminate via
    // the strict improvement rule.
    wfst::WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1);
    b.addArc(1, 2, -0.3f, wfst::kEpsilonLabel);
    b.addArc(2, 1, -0.3f, wfst::kEpsilonLabel);
    const wfst::Wfst net = b.build();

    acoustic::AcousticLikelihoods scores(1, 1);
    scores.frame(0)[1] = -0.2f;

    DecoderConfig cfg;
    cfg.beam = 50.0f;
    ViterbiDecoder dec(net, cfg);
    const DecodeResult r = dec.decode(scores);
    EXPECT_EQ(r.bestState, 1u);
    EXPECT_NEAR(r.score, -0.3f, 1e-5f);
}

TEST(Decoder, FinalWeightsSelectFinalState)
{
    // Two parallel paths; the higher-scoring end state is not final.
    wfst::WfstBuilder b(3);
    b.addArc(0, 1, -0.1f, 1);   // better path
    b.addArc(0, 2, -0.5f, 2);   // worse path but final
    b.setFinal(2, -0.01f);
    const wfst::Wfst net = b.build();

    acoustic::AcousticLikelihoods scores(1, 2);
    scores.frame(0)[1] = -0.3f;
    scores.frame(0)[2] = -0.3f;

    DecoderConfig plain;
    plain.beam = 10.0f;
    ViterbiDecoder dp(net, plain);
    EXPECT_EQ(dp.decode(scores).bestState, 1u);

    DecoderConfig with_finals = plain;
    with_finals.useFinalWeights = true;
    ViterbiDecoder df(net, with_finals);
    EXPECT_EQ(df.decode(scores).bestState, 2u);
}

TEST(Decoder, VisitCountsAccumulate)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    DecoderConfig cfg;
    cfg.beam = ex.beam;
    ViterbiDecoder dec(ex.wfst, cfg);
    const auto scores =
        acoustic::AcousticLikelihoods::fromNested(ex.frames);
    dec.decode(scores);
    const auto first = dec.stateVisitCounts()[0];
    dec.decode(scores);
    EXPECT_EQ(dec.stateVisitCounts()[0], 2 * first);
    dec.clearVisitCounts();
    EXPECT_EQ(dec.stateVisitCounts()[0], 0u);
}

TEST(Decoder, EmptyScoresYieldSeedOnly)
{
    const wfst::Figure2Example ex = wfst::buildFigure2Example();
    DecoderConfig cfg;
    cfg.beam = 10.0f;
    ViterbiDecoder dec(ex.wfst, cfg);
    const DecodeResult r =
        dec.decode(acoustic::AcousticLikelihoods(0, 5));
    EXPECT_TRUE(r.words.empty());
    EXPECT_EQ(r.bestState, ex.wfst.initialState());
    EXPECT_FLOAT_EQ(r.score, 0.0f);
}

// ---- WER scoring ----

TEST(Wer, ExactMatch)
{
    std::vector<wfst::WordId> ref{1, 2, 3};
    const WerResult r = scoreWer(ref, ref);
    EXPECT_EQ(r.errors(), 0u);
    EXPECT_DOUBLE_EQ(r.wer(), 0.0);
}

TEST(Wer, Substitution)
{
    std::vector<wfst::WordId> ref{1, 2, 3};
    std::vector<wfst::WordId> hyp{1, 9, 3};
    const WerResult r = scoreWer(ref, hyp);
    EXPECT_EQ(r.substitutions, 1u);
    EXPECT_EQ(r.insertions, 0u);
    EXPECT_EQ(r.deletions, 0u);
    EXPECT_NEAR(r.wer(), 1.0 / 3.0, 1e-9);
}

TEST(Wer, InsertionAndDeletion)
{
    std::vector<wfst::WordId> ref{1, 2, 3};
    std::vector<wfst::WordId> ins{1, 2, 9, 3};
    EXPECT_EQ(scoreWer(ref, ins).insertions, 1u);
    std::vector<wfst::WordId> del{1, 3};
    EXPECT_EQ(scoreWer(ref, del).deletions, 1u);
}

TEST(Wer, EmptySequences)
{
    std::vector<wfst::WordId> empty;
    std::vector<wfst::WordId> some{1, 2};
    EXPECT_DOUBLE_EQ(scoreWer(empty, empty).wer(), 0.0);
    EXPECT_EQ(scoreWer(empty, some).insertions, 2u);
    EXPECT_EQ(scoreWer(some, empty).deletions, 2u);
    EXPECT_DOUBLE_EQ(scoreWer(some, empty).wer(), 1.0);
}

TEST(Wer, AlignmentPicksMinimumEdits)
{
    // hyp aligns best with 1 sub + 1 del, not 2 subs + ins.
    std::vector<wfst::WordId> ref{1, 2, 3, 4};
    std::vector<wfst::WordId> hyp{1, 9, 4};
    const WerResult r = scoreWer(ref, hyp);
    EXPECT_EQ(r.errors(), 2u);
    EXPECT_NEAR(r.wer(), 0.5, 1e-9);
}

TEST(ViterbiStreaming, MatchesBatchDecode)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 500;
    gcfg.numPhonemes = 32;
    gcfg.seed = 271;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(32, 16, 828);

    DecoderConfig cfg;
    cfg.beam = 8.0f;
    ViterbiDecoder batch(net, cfg);
    const auto batch_result = batch.decode(scores);

    ViterbiDecoder stream(net, cfg);
    stream.streamBegin();
    for (std::size_t f = 0; f < scores.numFrames(); ++f)
        stream.streamFrame(scores.frame(f));
    const auto stream_result = stream.streamFinish();

    EXPECT_EQ(stream_result.words, batch_result.words);
    EXPECT_FLOAT_EQ(stream_result.score, batch_result.score);
    EXPECT_EQ(stream_result.bestState, batch_result.bestState);
    EXPECT_EQ(stream_result.stats.tokensExpanded,
              batch_result.stats.tokensExpanded);
}

TEST(ViterbiStreaming, PartialsAvailableMidStream)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 300;
    gcfg.numPhonemes = 16;
    gcfg.wordLabelProb = 0.5;
    gcfg.seed = 272;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    const auto scores = syntheticScores(16, 12, 829);

    DecoderConfig cfg;
    cfg.beam = 8.0f;
    ViterbiDecoder dec(net, cfg);
    dec.streamBegin();
    std::size_t nonempty = 0;
    for (std::size_t f = 0; f < scores.numFrames(); ++f) {
        dec.streamFrame(scores.frame(f));
        nonempty += dec.streamPartial().empty() ? 0 : 1;
    }
    const auto r = dec.streamFinish();
    if (!r.words.empty()) {
        EXPECT_GT(nonempty, 0u);
    }
}

TEST(ViterbiStreaming, DecoderIsReusableAcrossUtterances)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 200;
    gcfg.numPhonemes = 16;
    gcfg.seed = 273;
    const wfst::Wfst net = wfst::generateWfst(gcfg);

    DecoderConfig cfg;
    cfg.beam = 8.0f;
    ViterbiDecoder dec(net, cfg);
    const auto a1 = dec.decode(syntheticScores(16, 10, 1));
    const auto b = dec.decode(syntheticScores(16, 10, 2));
    const auto a2 = dec.decode(syntheticScores(16, 10, 1));
    EXPECT_EQ(a1.words, a2.words);
    EXPECT_FLOAT_EQ(a1.score, a2.score);
    (void)b;
}

TEST(ViterbiStreamingDeath, MisuseIsCaught)
{
    wfst::GeneratorConfig gcfg;
    gcfg.numStates = 50;
    gcfg.numPhonemes = 8;
    gcfg.seed = 274;
    const wfst::Wfst net = wfst::generateWfst(gcfg);
    DecoderConfig cfg;
    cfg.beam = 8.0f;
    ViterbiDecoder dec(net, cfg);
    EXPECT_DEATH(dec.streamPartial(), "outside an utterance");
    EXPECT_DEATH(dec.streamFinish(), "outside an utterance");
    dec.streamBegin();
    EXPECT_DEATH(dec.streamBegin(), "during an open utterance");
}
