/**
 * @file
 * Tests for the compressed arc layout (wfst/compact.hh): exact-mode
 * round trips must reproduce the raw arc array bit-for-bit in layout
 * order, quantized weights must stay within the advertised dequant
 * bound, and CompactArcs::load must reject every class of malformed
 * input (the compact twin of the wfst_io fuzz suite) -- that
 * validation is what licenses the unchecked varint reads on the
 * decode hot path.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "wfst/compact.hh"
#include "wfst/generate.hh"
#include "wfst/wfst.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

Wfst
testGraph(StateId states, std::uint64_t seed, double eps = 0.2)
{
    GeneratorConfig cfg;
    cfg.numStates = states;
    cfg.epsilonFraction = eps;
    cfg.seed = seed;
    return generateWfst(cfg);
}

/** Decode every state and compare against the raw layout. */
void
expectDecodesEqual(const Wfst &g, const CompactArcs &c,
                   bool exact_weights)
{
    ASSERT_EQ(c.numStates(), g.numStates());
    ASSERT_EQ(c.numArcs(), g.numArcs());
    std::vector<ArcEntry> buf;
    for (StateId s = 0; s < g.numStates(); ++s) {
        const auto raw = g.arcs(s);
        const CompactArcs::GroupHeader &h = c.header(s);
        ASSERT_EQ(h.numNonEps, g.state(s).numNonEpsArcs);
        ASSERT_EQ(h.numEps, g.state(s).numEpsArcs);
        buf.resize(raw.size());
        ASSERT_EQ(c.decodeState(s, buf.data()), raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i) {
            ASSERT_EQ(buf[i].dest, raw[i].dest)
                << "state " << s << " arc " << i;
            ASSERT_EQ(buf[i].ilabel, raw[i].ilabel)
                << "state " << s << " arc " << i;
            ASSERT_EQ(buf[i].olabel, raw[i].olabel)
                << "state " << s << " arc " << i;
            if (exact_weights)
                ASSERT_EQ(buf[i].weight, raw[i].weight)
                    << "state " << s << " arc " << i;
            else
                ASSERT_LE(
                    std::abs(buf[i].weight - raw[i].weight),
                    c.maxWeightError() + 1e-6f)
                    << "state " << s << " arc " << i;
        }
    }
}

} // namespace

TEST(WfstCompact, ExactRoundTripIsBitwise)
{
    const Wfst g = testGraph(700, 11);
    const CompactArcs c = CompactArcs::build(g, WeightMode::Exact);
    EXPECT_EQ(c.weightMode(), WeightMode::Exact);
    EXPECT_FALSE(c.quantized());
    EXPECT_EQ(c.maxWeightError(), 0.0f);
    expectDecodesEqual(g, c, true);
}

TEST(WfstCompact, QuantizedWeightsWithinBound)
{
    const Wfst g = testGraph(700, 13);
    const CompactArcs c =
        CompactArcs::build(g, WeightMode::Quantized);
    EXPECT_TRUE(c.quantized());
    EXPECT_GT(c.maxWeightError(), 0.0f);
    // Structure (dests, labels, order) is never quantized.
    expectDecodesEqual(g, c, false);
}

TEST(WfstCompact, GroupOffsetsTileThePayload)
{
    const Wfst g = testGraph(300, 17);
    const CompactArcs c = CompactArcs::build(g, WeightMode::Exact);
    std::uint64_t sum = 0;
    for (StateId s = 0; s < g.numStates(); ++s)
        sum += c.groupBytes(s);
    EXPECT_EQ(sum, c.payloadBytes());
    EXPECT_EQ(c.header(g.numStates()).offset, c.payloadBytes());
}

TEST(WfstCompact, CompressesBelowRawLayout)
{
    // The whole point: headers + payload (+ table) must undercut the
    // 16 B/arc raw array by a wide margin on a generator graph.
    const Wfst g = testGraph(2000, 19);
    const CompactArcs exact =
        CompactArcs::build(g, WeightMode::Exact);
    const CompactArcs quant =
        CompactArcs::build(g, WeightMode::Quantized);
    const std::size_t raw =
        std::size_t(g.numArcs()) * sizeof(ArcEntry);
    EXPECT_LT(exact.sizeBytes(), raw);
    EXPECT_LT(quant.sizeBytes(), exact.sizeBytes());
    EXPECT_LT(quant.bytesPerArc(), 8.0);
}

TEST(WfstCompact, LoadRevalidatesBuiltPayload)
{
    // Round trip through the deserialization entry point: load() of
    // build()'s own parts must accept and reproduce them.
    const Wfst g = testGraph(400, 23);
    for (const WeightMode mode :
         {WeightMode::Exact, WeightMode::Quantized}) {
        const CompactArcs c = CompactArcs::build(g, mode);
        const auto headers = c.headerArray();
        const auto payload = c.payload();
        const CompactArcs loaded = CompactArcs::load(
            {headers.begin(), headers.end()},
            {payload.begin(), payload.end()}, mode, c.weightTable(),
            g.numStates());
        EXPECT_EQ(loaded.numArcs(), g.numArcs());
        expectDecodesEqual(g, loaded, mode == WeightMode::Exact);
    }
}

TEST(WfstCompact, EmptyGraph)
{
    WfstBuilder b(1);  // single state, no arcs
    const Wfst g = b.build();
    const CompactArcs c = CompactArcs::build(g, WeightMode::Exact);
    EXPECT_EQ(c.numStates(), 1u);
    EXPECT_EQ(c.numArcs(), 0u);
    EXPECT_EQ(c.payloadBytes(), 0u);
    EXPECT_EQ(c.groupBytes(0), 0u);
}

namespace {

/** Parts of a built CompactArcs, mutable for hostile-input tests. */
struct Parts
{
    std::vector<CompactArcs::GroupHeader> headers;
    std::vector<std::uint8_t> payload;
    std::vector<float> table;
    WeightMode mode = WeightMode::Exact;
    StateId numStates = 0;

    CompactArcs
    load() const
    {
        return CompactArcs::load(headers, payload, mode, table,
                                 numStates);
    }
};

Parts
builtParts(WeightMode mode)
{
    const Wfst g = testGraph(120, 29);
    const CompactArcs c = CompactArcs::build(g, mode);
    Parts p;
    p.headers = {c.headerArray().begin(), c.headerArray().end()};
    p.payload = {c.payload().begin(), c.payload().end()};
    p.table = {c.weightTable().begin(), c.weightTable().end()};
    p.mode = mode;
    p.numStates = g.numStates();
    return p;
}

} // namespace

TEST(WfstCompactDeath, RejectsHeaderCountMismatch)
{
    Parts p = builtParts(WeightMode::Exact);
    p.headers.pop_back();
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "group headers for");
}

TEST(WfstCompactDeath, RejectsSentinelWithArcCounts)
{
    Parts p = builtParts(WeightMode::Exact);
    p.headers.back().numEps = 1;
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "sentinel header has arc counts");
}

TEST(WfstCompactDeath, RejectsSentinelOffsetMismatch)
{
    Parts p = builtParts(WeightMode::Exact);
    p.headers.back().offset -= 1;
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "sentinel offset");
}

TEST(WfstCompactDeath, RejectsTruncatedPayload)
{
    // Chop the tail and fix the sentinel up so only the per-group
    // decode walk can notice the record is cut short.
    Parts p = builtParts(WeightMode::Exact);
    ASSERT_GT(p.payload.size(), 2u);
    p.payload.resize(p.payload.size() - 2);
    p.headers.back().offset = std::uint32_t(p.payload.size());
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1), "truncated");
}

TEST(WfstCompactDeath, RejectsNonMonotoneOffsets)
{
    Parts p = builtParts(WeightMode::Exact);
    // Find a state with a nonempty group and push its successor's
    // offset before it.
    for (std::size_t s = 0; s + 1 < p.headers.size(); ++s) {
        if (p.headers[s + 1].offset > p.headers[s].offset &&
            s + 2 < p.headers.size()) {
            p.headers[s + 1].offset = 0;
            p.headers[s + 1].numNonEps = 0;
            p.headers[s + 1].numEps = 0;
            break;
        }
    }
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1), "compact arcs");
}

TEST(WfstCompactDeath, RejectsOutOfRangeDest)
{
    // Hand-crafted single-state graph whose one arc points at state
    // 5: zigzag(+5) = 10, ilabel 3, olabel 0, f32 weight.
    Parts p;
    p.numStates = 1;
    p.mode = WeightMode::Exact;
    p.payload = {10, 3, 0};
    const float w = 0.5f;
    const std::uint8_t *wb =
        reinterpret_cast<const std::uint8_t *>(&w);
    p.payload.insert(p.payload.end(), wb, wb + sizeof(float));
    p.headers = {{0, 1, 0},
                 {std::uint32_t(p.payload.size()), 0, 0}};
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(WfstCompactDeath, RejectsEpsilonIlabelOnNonEpsArc)
{
    // Same single-arc graph, but the non-eps record carries ilabel 0
    // (= kEpsilonLabel): the layout contract forbids it.
    Parts p;
    p.numStates = 1;
    p.mode = WeightMode::Exact;
    p.payload = {0, 0, 0};  // dest delta 0, ilabel 0, olabel 0
    const float w = 0.0f;
    const std::uint8_t *wb =
        reinterpret_cast<const std::uint8_t *>(&w);
    p.payload.insert(p.payload.end(), wb, wb + sizeof(float));
    p.headers = {{0, 1, 0},
                 {std::uint32_t(p.payload.size()), 0, 0}};
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "bad non-eps ilabel");
}

TEST(WfstCompactDeath, RejectsTrailingBytesInGroup)
{
    Parts p = builtParts(WeightMode::Quantized);
    // Append a stray byte to the last group.
    p.payload.push_back(0);
    p.headers.back().offset = std::uint32_t(p.payload.size());
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "trailing bytes");
}

TEST(WfstCompactDeath, RejectsBadDequantTable)
{
    Parts p = builtParts(WeightMode::Quantized);
    p.table.resize(17);
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "dequant table has");

    Parts q = builtParts(WeightMode::Quantized);
    q.table[100] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EXIT(q.load(), ::testing::ExitedWithCode(1),
                "non-finite");
}

TEST(WfstCompactDeath, RejectsTableInExactMode)
{
    Parts p = builtParts(WeightMode::Exact);
    p.table.assign(256, 0.0f);
    EXPECT_EXIT(p.load(), ::testing::ExitedWithCode(1),
                "table present in exact mode");
}

TEST(WfstCompactFuzz, RandomShapesRoundTripThroughLoad)
{
    // Property sweep mirroring WfstIoFuzz: random generator shapes
    // encode, revalidate through load(), and decode back bit-exactly
    // (exact mode) across epsilon mixes and topologies.
    Rng rng(0xc0de);
    for (unsigned trial = 0; trial < 16; ++trial) {
        GeneratorConfig cfg;
        cfg.numStates = StateId(2 + rng.below(600));
        cfg.numPhonemes = std::uint32_t(1 + rng.below(64));
        cfg.numWords = std::uint32_t(1 + rng.below(500));
        cfg.epsilonFraction = rng.uniform(0.0, 0.4);
        cfg.selfLoopProb = rng.uniform(0.0, 1.0);
        cfg.forwardEpsilonOnly = rng.bernoulli(0.5);
        cfg.wordLabelProb = rng.uniform(0.0, 0.5);
        cfg.seed = rng.next();
        const Wfst g = generateWfst(cfg);
        const WeightMode mode = rng.bernoulli(0.5)
                                    ? WeightMode::Exact
                                    : WeightMode::Quantized;
        const CompactArcs c = CompactArcs::build(g, mode);
        const auto headers = c.headerArray();
        const auto payload = c.payload();
        const CompactArcs loaded = CompactArcs::load(
            {headers.begin(), headers.end()},
            {payload.begin(), payload.end()}, mode, c.weightTable(),
            g.numStates());
        expectDecodesEqual(g, loaded, mode == WeightMode::Exact);
    }
}
