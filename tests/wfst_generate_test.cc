/**
 * @file
 * Tests for the synthetic WFST generator: the statistical shape must
 * match the paper's transducer, generation must be reproducible, and
 * the graph must be structurally sound for decoding.
 */

#include <gtest/gtest.h>

#include "wfst/generate.hh"
#include "wfst/stats.hh"

using namespace asr;
using namespace asr::wfst;

namespace {

Wfst
makeDefault(StateId states, std::uint64_t seed)
{
    GeneratorConfig cfg;
    cfg.numStates = states;
    cfg.seed = seed;
    return generateWfst(cfg);
}

} // namespace

TEST(Generator, Deterministic)
{
    const Wfst a = makeDefault(5000, 42);
    const Wfst b = makeDefault(5000, 42);
    ASSERT_EQ(a.numArcs(), b.numArcs());
    for (ArcId i = 0; i < a.numArcs(); ++i) {
        ASSERT_EQ(a.arc(i).dest, b.arc(i).dest);
        ASSERT_EQ(a.arc(i).weight, b.arc(i).weight);
        ASSERT_EQ(a.arc(i).ilabel, b.arc(i).ilabel);
    }
}

TEST(Generator, SeedChangesOutput)
{
    const Wfst a = makeDefault(5000, 1);
    const Wfst b = makeDefault(5000, 2);
    bool any_diff = a.numArcs() != b.numArcs();
    for (ArcId i = 0; !any_diff && i < a.numArcs(); ++i)
        any_diff = a.arc(i).dest != b.arc(i).dest;
    EXPECT_TRUE(any_diff);
}

TEST(Generator, MeanDegreeNearKaldi)
{
    // The paper's transducer: 34.7 M arcs / 13.5 M states = 2.56.
    const Wfst w = makeDefault(50000, 7);
    EXPECT_NEAR(w.meanOutDegree(), 2.56, 0.45);
}

TEST(Generator, EpsilonFractionNearKaldi)
{
    // Sec. II: 11.5% of Kaldi's arcs are epsilon.
    const Wfst w = makeDefault(50000, 7);
    EXPECT_NEAR(epsilonArcFraction(w), 0.115, 0.02);
}

TEST(Generator, MaxDegreeBounded)
{
    const Wfst w = makeDefault(100000, 3);
    EXPECT_LE(w.maxOutDegree(), 770u);
    // With 100 k draws the heavy tail should be exercised.
    EXPECT_GT(w.maxOutDegree(), 100u);
}

TEST(Generator, NoAbsorbingSelfLoopStates)
{
    // Every state with exactly one non-epsilon arc must advance:
    // a self-loop-only state would trap the search frontier.
    const Wfst w = makeDefault(20000, 11);
    for (StateId s = 0; s < w.numStates(); ++s) {
        const auto arcs = w.nonEpsArcs(s);
        if (arcs.size() == 1) {
            ASSERT_NE(arcs[0].dest, s) << "state " << s;
        }
    }
}

TEST(Generator, AtMostOneSelfLoopPerState)
{
    const Wfst w = makeDefault(20000, 13);
    for (StateId s = 0; s < w.numStates(); ++s) {
        unsigned loops = 0;
        for (const auto &a : w.nonEpsArcs(s))
            loops += a.dest == s;
        ASSERT_LE(loops, 1u) << "state " << s;
    }
}

TEST(Generator, ForwardEpsilonIsAcyclic)
{
    const Wfst w = makeDefault(20000, 17);
    for (StateId s = 0; s < w.numStates(); ++s)
        for (const auto &a : w.epsArcs(s))
            ASSERT_GT(a.dest, s) << "eps arc must point forward";
}

TEST(Generator, CyclicEpsilonModeAllowsBackArcs)
{
    GeneratorConfig cfg;
    cfg.numStates = 20000;
    cfg.forwardEpsilonOnly = false;
    cfg.seed = 19;
    const Wfst w = generateWfst(cfg);
    bool any_back = false;
    for (StateId s = 0; s < w.numStates() && !any_back; ++s)
        for (const auto &a : w.epsArcs(s))
            any_back = any_back || a.dest < s;
    EXPECT_TRUE(any_back);
    // But never an epsilon self-loop (those would never terminate).
    for (StateId s = 0; s < w.numStates(); ++s)
        for (const auto &a : w.epsArcs(s))
            ASSERT_NE(a.dest, s);
}

TEST(Generator, WeightsAreNegativeLogProbs)
{
    const Wfst w = makeDefault(10000, 23);
    for (ArcId i = 0; i < w.numArcs(); ++i) {
        ASSERT_LT(w.arc(i).weight, 0.0f);
        ASSERT_GE(w.arc(i).weight, -3.1f);
    }
}

TEST(Generator, LabelsInRange)
{
    GeneratorConfig cfg;
    cfg.numStates = 10000;
    cfg.numPhonemes = 100;
    cfg.numWords = 50;
    cfg.seed = 29;
    const Wfst w = generateWfst(cfg);
    for (ArcId i = 0; i < w.numArcs(); ++i) {
        const ArcEntry &a = w.arc(i);
        ASSERT_LE(a.ilabel, 100u);
        ASSERT_LE(a.olabel, 50u);
        if (!a.isEpsilon()) {
            ASSERT_GE(a.ilabel, 1u);
        }
    }
}

TEST(Generator, InitialStateHasFanout)
{
    const Wfst w = makeDefault(1000, 31);
    EXPECT_GE(w.state(w.initialState()).numArcs(), 8u);
}

/** Sweep: the shape holds across scales and seeds. */
struct GenCase
{
    StateId states;
    std::uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenCase>
{
};

TEST_P(GeneratorSweep, ShapeInvariants)
{
    GeneratorConfig cfg;
    cfg.numStates = GetParam().states;
    cfg.seed = GetParam().seed;
    const Wfst w = generateWfst(cfg);
    w.validate();
    EXPECT_EQ(w.numStates(), GetParam().states);
    EXPECT_GT(w.meanOutDegree(), 1.8);
    EXPECT_LT(w.meanOutDegree(), 3.4);
    EXPECT_LE(w.maxOutDegree(), 770u);
    EXPECT_NEAR(epsilonArcFraction(w), 0.115, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorSweep,
                         ::testing::Values(GenCase{100, 1},
                                           GenCase{1000, 2},
                                           GenCase{1000, 3},
                                           GenCase{10000, 4},
                                           GenCase{10000, 5},
                                           GenCase{100000, 6}));
