/**
 * @file
 * The corpus-driven endpointing suite: the acceptance harness the
 * always-on pipeline was tuned against, plus the engine-level
 * integration it certifies.
 *
 *  - Corpus sweep: >= 20 seeds x 3 SNR levels of synthetic
 *    always-on recordings (frontend::generateEndpointCorpus -- no
 *    binary assets, everything derives from the seed) with 0 missed
 *    segments and <= 1 false trigger in total, at known boundaries.
 *  - Chunk invariance: detected boundaries are bit-identical under
 *    pathological push sizes (the determinism contract).
 *  - Engine integration: a live stream opened with
 *    StreamOptions::autoEndpoint emits, per detected segment, a
 *    result *bit-identical* to a manual decode of exactly that
 *    sample range -- in per-session AND batch-scoring mode.
 *  - Wake-word gating: nothing is decoded before the wake phrase.
 *  - Races (concurrency label, TSan in CI): a client finish()
 *    landing while trailing silence is auto-finishing a segment
 *    resolves to exactly one final result in both modes.
 */

#include <atomic>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hh"
#include "common/logging.hh"
#include "frontend/endpointer.hh"
#include "wfst/generate.hh"

using namespace asr;
using api::Engine;
using api::EngineOptions;
using api::StreamHandle;
using api::StreamOptions;
using frontend::EndpointCorpusConfig;
using frontend::EndpointCorpusUtterance;
using frontend::Endpointer;
using frontend::EndpointerConfig;
using frontend::LabeledSegment;
using frontend::SegmentationScore;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuiet(true); }
};

[[maybe_unused]] const auto *env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

constexpr unsigned kPhonemes = 8;

/** Shared net + trained model for the engine-integration tests. */
class EndpointingTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        wfst::GeneratorConfig gcfg;
        gcfg.numStates = 200;
        gcfg.numPhonemes = kPhonemes;
        gcfg.numWords = 40;
        gcfg.seed = 2027;
        net = new wfst::Wfst(wfst::generateWfst(gcfg));

        pipeline::AsrSystemConfig mcfg;
        mcfg.numPhonemes = kPhonemes;
        mcfg.hiddenLayers = {32};
        mcfg.trainUtterPerPhoneme = 8;
        mcfg.trainEpochs = 8;
        mcfg.beam = 14.0f;
        mcfg.seed = 53;
        model = new pipeline::AsrModel(*net, mcfg);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete net;
        model = nullptr;
        net = nullptr;
    }

    /** A short always-on recording decodable at test speed. */
    static EndpointCorpusUtterance
    recording(std::uint64_t seed, unsigned segments = 2)
    {
        EndpointCorpusConfig cc;
        cc.seed = seed;
        cc.numPhonemes = kPhonemes;
        cc.numSegments = segments;
        cc.minSpeechFrames = 25;
        cc.maxSpeechFrames = 45;
        cc.snrDb = 30.0;
        return frontend::generateEndpointCorpus(cc);
    }

    /** The boundaries the engine must reproduce: a standalone
     *  Endpointer with the same (default) config over the same
     *  audio. */
    static std::vector<LabeledSegment>
    expectedSegments(const EndpointCorpusUtterance &u)
    {
        Endpointer ep{EndpointerConfig()};
        return frontend::detectSegments(ep, u.audio);
    }

    struct SegmentRecord
    {
        pipeline::RecognitionResult result;
        server::SegmentBoundary boundary;
    };

    /**
     * Stream @p u through an auto-endpointed live stream in @p chunk
     * sized pushes and return the emitted segments plus the final
     * result.
     */
    static std::pair<std::vector<SegmentRecord>,
                     pipeline::RecognitionResult>
    streamAuto(Engine &engine, const EndpointCorpusUtterance &u,
               std::size_t chunk)
    {
        std::vector<SegmentRecord> segs;
        std::mutex mu;
        StreamOptions sopts;
        sopts.autoEndpoint = true;
        sopts.onSegment =
            [&](const pipeline::RecognitionResult &result,
                const server::SegmentBoundary &boundary) {
                std::lock_guard<std::mutex> lock(mu);
                segs.push_back(SegmentRecord{result, boundary});
            };
        const StreamHandle h = engine.open(sopts);
        EXPECT_NE(h.value, 0u);
        const std::vector<float> &s = u.audio.samples;
        for (std::size_t base = 0; base < s.size(); base += chunk) {
            const std::size_t len = std::min(chunk, s.size() - base);
            EXPECT_TRUE(engine.push(
                h, std::span<const float>(s.data() + base, len)));
        }
        pipeline::RecognitionResult final_result =
            engine.finish(h).get();
        std::lock_guard<std::mutex> lock(mu);
        return {segs, std::move(final_result)};
    }

    /** Manual reference: one-shot decode of exactly [start, end). */
    static pipeline::RecognitionResult
    manualDecode(Engine &engine, const EndpointCorpusUtterance &u,
                 const LabeledSegment &seg)
    {
        frontend::AudioSignal slice;
        slice.sampleRate = u.audio.sampleRate;
        slice.samples.assign(
            u.audio.samples.begin() + std::ptrdiff_t(seg.startSample),
            u.audio.samples.begin() + std::ptrdiff_t(seg.endSample));
        return engine.recognize(slice);
    }

    static EngineOptions
    engineOptions(bool batched)
    {
        EngineOptions opts;
        opts.numThreads = 3;
        opts.batchScoring = batched;
        return opts;
    }

    static wfst::Wfst *net;
    static pipeline::AsrModel *model;
};

wfst::Wfst *EndpointingTest::net = nullptr;
pipeline::AsrModel *EndpointingTest::model = nullptr;

} // namespace

// ---------------------------------------------------------------------------
// Corpus acceptance sweep (no model needed; pure front-end).
// ---------------------------------------------------------------------------

TEST(EndpointingCorpus, SweepHasNoMissesAndAtMostOneFalseTrigger)
{
    const double snrs[] = {30.0, 20.0, 10.0};
    std::size_t truth_total = 0, missed = 0, false_triggers = 0;
    for (const double snr : snrs) {
        for (std::uint64_t seed = 1; seed <= 24; ++seed) {
            EndpointCorpusConfig cc;
            cc.seed = seed;
            cc.snrDb = snr;
            const EndpointCorpusUtterance u =
                frontend::generateEndpointCorpus(cc);
            ASSERT_EQ(u.segments.size(), cc.numSegments);
            Endpointer ep{EndpointerConfig()};
            const std::vector<LabeledSegment> detected =
                frontend::detectSegments(ep, u.audio);
            const SegmentationScore score = frontend::scoreSegmentation(
                u.segments, detected, cc.sampleRate);
            truth_total += score.truthSegments;
            missed += score.missed;
            false_triggers += score.falseTriggers;
            // Matched boundaries stay within preroll of the true
            // onset and within the closing delay of the true end.
            if (score.missed == 0 &&
                score.detectedSegments == score.truthSegments) {
                EXPECT_LT(score.meanStartErrMs, 100.0)
                    << "snr " << snr << " seed " << seed;
                EXPECT_LT(score.meanEndErrMs, 450.0)
                    << "snr " << snr << " seed " << seed;
            }
        }
    }
    EXPECT_EQ(truth_total, 3u * 24u * 3u);
    EXPECT_EQ(missed, 0u) << "missed segments across the sweep";
    EXPECT_LE(false_triggers, 1u) << "false triggers across the sweep";
}

TEST(EndpointingCorpus, BoundariesAreChunkSizeInvariant)
{
    EndpointCorpusConfig cc;
    cc.seed = 5;
    cc.numSegments = 2;
    const EndpointCorpusUtterance u =
        frontend::generateEndpointCorpus(cc);

    Endpointer ref{EndpointerConfig()};
    const std::vector<LabeledSegment> expect =
        frontend::detectSegments(ref, u.audio, u.audio.samples.size());
    ASSERT_FALSE(expect.empty());

    for (const std::size_t chunk :
         {std::size_t(1), std::size_t(13), std::size_t(160),
          std::size_t(7001)}) {
        Endpointer ep{EndpointerConfig()};
        const std::vector<LabeledSegment> got =
            frontend::detectSegments(ep, u.audio, chunk);
        ASSERT_EQ(got.size(), expect.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].startSample, expect[i].startSample)
                << "chunk " << chunk << " segment " << i;
            EXPECT_EQ(got[i].endSample, expect[i].endSample)
                << "chunk " << chunk << " segment " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Engine integration: auto-endpointed streams decode each segment
// bit-identically to a manual decode of the same samples.
// ---------------------------------------------------------------------------

TEST_F(EndpointingTest, AutoSegmentsMatchManualDecodesBothModes)
{
    const EndpointCorpusUtterance u = recording(3);
    const std::vector<LabeledSegment> expect = expectedSegments(u);
    ASSERT_EQ(expect.size(), 2u)
        << "recording seed must segment cleanly";

    for (const bool batched : {false, true}) {
        SCOPED_TRACE(batched ? "batch" : "per-session");
        Engine engine(*model, engineOptions(batched));
        const auto [segs, final_result] = streamAuto(engine, u, 160);

        ASSERT_EQ(segs.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
            // Sample-exact boundaries, in order.
            EXPECT_EQ(segs[i].boundary.index, i);
            EXPECT_EQ(segs[i].boundary.startSample,
                      expect[i].startSample);
            EXPECT_EQ(segs[i].boundary.endSample,
                      expect[i].endSample);
            // Bit-identical decode of that range.
            const pipeline::RecognitionResult manual =
                manualDecode(engine, u, expect[i]);
            EXPECT_EQ(segs[i].result.words, manual.words)
                << "segment " << i;
            EXPECT_EQ(segs[i].result.score, manual.score)
                << "segment " << i;
        }
        // The stream's final result re-delivers the last segment.
        EXPECT_EQ(final_result.words, segs.back().result.words);
        EXPECT_EQ(final_result.score, segs.back().result.score);

        const server::EngineSnapshot snap = engine.stats();
        EXPECT_EQ(snap.segments, expect.size());
        EXPECT_EQ(snap.gateOpens, 0u);
        EXPECT_NE(snap.render().find("always-on"), std::string::npos);
    }
}

TEST_F(EndpointingTest, AutoSegmentsAreChunkInvariantThroughEngine)
{
    const EndpointCorpusUtterance u = recording(8, 1);
    Engine engine(*model, engineOptions(false));

    const auto [ref, ref_final] = streamAuto(engine, u, 160);
    ASSERT_EQ(ref.size(), 1u);
    for (const std::size_t chunk : {std::size_t(73),
                                    std::size_t(1536)}) {
        const auto [got, got_final] = streamAuto(engine, u, chunk);
        ASSERT_EQ(got.size(), ref.size()) << "chunk " << chunk;
        EXPECT_EQ(got[0].boundary.startSample,
                  ref[0].boundary.startSample);
        EXPECT_EQ(got[0].boundary.endSample,
                  ref[0].boundary.endSample);
        EXPECT_EQ(got[0].result.words, ref[0].result.words);
        EXPECT_EQ(got[0].result.score, ref[0].result.score);
    }
}

TEST_F(EndpointingTest, SilentStreamYieldsEmptyFinalBothModes)
{
    for (const bool batched : {false, true}) {
        SCOPED_TRACE(batched ? "batch" : "per-session");
        Engine engine(*model, engineOptions(batched));
        std::atomic<int> segments{0};
        StreamOptions sopts;
        sopts.autoEndpoint = true;
        sopts.onSegment = [&](const pipeline::RecognitionResult &,
                              const server::SegmentBoundary &) {
            ++segments;
        };
        const StreamHandle h = engine.open(sopts);
        ASSERT_NE(h.value, 0u);
        const std::vector<float> silence(1600, 0.0f);
        for (int i = 0; i < 20; ++i)
            ASSERT_TRUE(engine.push(h, silence));
        const pipeline::RecognitionResult final_result =
            engine.finish(h).get();
        EXPECT_TRUE(final_result.words.empty());
        EXPECT_EQ(segments.load(), 0);
        EXPECT_EQ(engine.stats().segments, 0u);
    }
}

TEST_F(EndpointingTest, UnknownDetectorAndBareWakeWordAreRejected)
{
    Engine engine(*model, engineOptions(false));
    {
        StreamOptions sopts;
        sopts.autoEndpoint = true;
        sopts.endpoint.detector = "no-such-vad";
        const StreamHandle h = engine.open(sopts);
        EXPECT_EQ(h.value, 0u);
    }
    {
        StreamOptions sopts;  // wakeWord without autoEndpoint
        sopts.wakeWord.assign(16000, 0.0f);
        const StreamHandle h = engine.open(sopts);
        EXPECT_EQ(h.value, 0u);
    }
    // The engine still serves ordinary work afterwards.
    const pipeline::RecognitionResult r =
        engine.recognize(recording(4, 1).audio);
    EXPECT_GE(r.audioSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Wake-word gating.
// ---------------------------------------------------------------------------

TEST_F(EndpointingTest, WakeWordGatesDecodingUntilPhrase)
{
    // Stream: [decoy speech] [silence] [wake phrase] [silence]
    // [command speech] [silence].  Gated: only the command (and
    // possibly the tail of the wake audio) may produce segments; the
    // decoy must never be decoded.
    const frontend::Synthesizer &synth = model->synthesizer();
    const frontend::AudioSignal wake =
        synth.synthesize({1, 4, 2, 6}, 8);
    const frontend::AudioSignal decoy =
        synth.synthesize({3, 5, 7}, 8);
    const frontend::AudioSignal command =
        synth.synthesize({2, 8, 5, 1}, 8);
    const std::vector<float> gap(16000, 0.0f);  // 1 s silence

    std::vector<float> stream;
    const auto append = [&stream](const std::vector<float> &s) {
        stream.insert(stream.end(), s.begin(), s.end());
    };
    append(gap);
    append(decoy.samples);
    append(gap);
    append(wake.samples);
    append(gap);
    append(command.samples);
    append(gap);

    Engine engine(*model, engineOptions(false));
    std::vector<server::SegmentBoundary> boundaries;
    std::mutex mu;
    StreamOptions sopts;
    sopts.autoEndpoint = true;
    sopts.wakeWord = wake.samples;
    sopts.wakeThreshold = 0.8f;
    sopts.onSegment = [&](const pipeline::RecognitionResult &,
                          const server::SegmentBoundary &b) {
        std::lock_guard<std::mutex> lock(mu);
        boundaries.push_back(b);
    };
    const StreamHandle h = engine.open(sopts);
    ASSERT_NE(h.value, 0u);
    for (std::size_t base = 0; base < stream.size(); base += 160) {
        const std::size_t len = std::min<std::size_t>(
            160, stream.size() - base);
        ASSERT_TRUE(engine.push(
            h, std::span<const float>(stream.data() + base, len)));
    }
    (void)engine.finish(h).get();

    const server::EngineSnapshot snap = engine.stats();
    EXPECT_EQ(snap.gateOpens, 1u);

    // The decoy ends well before the wake phrase begins; no emitted
    // segment may start before the wake phrase.
    const std::uint64_t wake_start = 2 * gap.size() +
                                     decoy.samples.size();
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_FALSE(boundaries.empty())
        << "command after the wake phrase was never decoded";
    for (const server::SegmentBoundary &b : boundaries)
        EXPECT_GE(b.startSample, wake_start)
            << "segment " << b.index << " decoded gated audio";
}

// ---------------------------------------------------------------------------
// Races: client finish() vs segment auto-finish (concurrency label;
// CI runs this under TSan).
// ---------------------------------------------------------------------------

TEST_F(EndpointingTest, FinishRacingAutoEndpointResolvesOnceBothModes)
{
    const EndpointCorpusUtterance u = recording(11, 1);
    for (const bool batched : {false, true}) {
        SCOPED_TRACE(batched ? "batch" : "per-session");
        Engine engine(*model, engineOptions(batched));
        // Several rounds to vary the interleaving: the pusher stops
        // right after the burst's trailing silence entered the
        // queue, so the engine-side auto-finish of the segment races
        // the client's stream finish().
        for (int round = 0; round < 4; ++round) {
            std::atomic<int> segments{0};
            StreamOptions sopts;
            sopts.autoEndpoint = true;
            sopts.onSegment = [&](const pipeline::RecognitionResult &,
                                  const server::SegmentBoundary &) {
                ++segments;
            };
            const StreamHandle h = engine.open(sopts);
            ASSERT_NE(h.value, 0u);

            std::thread pusher([&] {
                const std::vector<float> &s = u.audio.samples;
                for (std::size_t base = 0; base < s.size();
                     base += 160) {
                    const std::size_t len =
                        std::min<std::size_t>(160, s.size() - base);
                    if (!engine.push(h, std::span<const float>(
                                            s.data() + base, len)))
                        break;
                }
            });
            // Finish from the client thread while the pusher (and
            // the auto-endpointer behind it) is mid-flight.
            std::future<pipeline::RecognitionResult> fut =
                engine.finish(h);
            pusher.join();
            if (fut.valid()) {
                const pipeline::RecognitionResult final_result =
                    fut.get();
                // Exactly one final result; if the burst's trailing
                // silence was consumed before the close, the segment
                // also fired -- never more than once.
                EXPECT_LE(segments.load(), 1);
            }
            EXPECT_EQ(engine.state(h), api::StreamState::Done);
        }
        engine.drain();
    }
}
